//! Command-log capture and JEDEC-legality verification.
//!
//! When enabled, the channel scheduler records every device command it
//! issues; [`verify_log`] independently re-checks the log against the
//! timing constraints (tRC, tRAS, tRP, tRCD, tRTP, tWR, tCCD, tRRD, tFAW,
//! data-bus occupancy). This is a second implementation of the rules, so
//! scheduler bugs cannot hide behind their own bookkeeping — the property
//! tests drive random request streams through both.

use serde::{Deserialize, Serialize};

use crate::allbank::{AllBankCommand, AllBankCommandKind, PimStream};
use crate::command::CommandKind;
use crate::spec::Timing;

/// One logged device command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoggedCommand {
    /// Issue cycle.
    pub cycle: u64,
    /// Command kind.
    pub kind: CommandKind,
    /// Rank.
    pub rank: u64,
    /// Bank (flat; meaningless for RefAb).
    pub bank: u64,
    /// Row for ACT, column for RD/WR, 0 otherwise.
    pub arg: u64,
}

/// A violation found by [`verify_log`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index of the offending command in the log.
    pub index: usize,
    /// Human-readable rule description.
    pub rule: String,
}

#[derive(Debug, Clone, Copy, Default)]
struct BankTrace {
    last_act: Option<u64>,
    last_pre: Option<u64>,
    last_rd: Option<u64>,
    last_wr: Option<u64>,
    open: bool,
}

/// Re-check a per-channel command log against `timing`. Returns all
/// violations (empty = legal). `banks_per_group` is needed for the
/// tRRD_L/tCCD_L same-bank-group rules.
pub fn verify_log(
    log: &[LoggedCommand],
    timing: &Timing,
    ranks: u64,
    banks: u64,
    banks_per_group: u64,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut bank_state = vec![BankTrace::default(); (ranks * banks) as usize];
    let mut rank_acts: Vec<Vec<u64>> = vec![Vec::new(); ranks as usize];
    let mut bus_busy_until = 0u64;
    let check = |cond: bool, index: usize, rule: String, out: &mut Vec<Violation>| {
        if !cond {
            out.push(Violation { index, rule });
        }
    };

    let mut last_cmd_cycle: Option<u64> = None;
    for (i, c) in log.iter().enumerate() {
        if let Some(prev) = last_cmd_cycle {
            check(c.cycle >= prev, i, "commands must be time-ordered".into(), &mut violations);
            if c.kind != CommandKind::RefAb {
                check(
                    c.cycle > prev || c.kind == CommandKind::RefAb,
                    i,
                    "one command per cycle per channel".into(),
                    &mut violations,
                );
            }
        }
        if c.kind != CommandKind::RefAb {
            last_cmd_cycle = Some(c.cycle);
        }
        let bi = (c.rank * banks + c.bank) as usize;
        match c.kind {
            CommandKind::Act => {
                let b = bank_state[bi];
                check(
                    !b.open,
                    i,
                    format!("ACT to open bank rk{} ba{}", c.rank, c.bank),
                    &mut violations,
                );
                if let Some(t) = b.last_act {
                    check(
                        c.cycle >= t + timing.rc,
                        i,
                        format!("tRC violation on rk{} ba{}", c.rank, c.bank),
                        &mut violations,
                    );
                }
                if let Some(t) = b.last_pre {
                    check(
                        c.cycle >= t + timing.rp,
                        i,
                        format!("tRP violation on rk{} ba{}", c.rank, c.bank),
                        &mut violations,
                    );
                }
                // tRRD (same rank) and tFAW.
                let acts = &rank_acts[c.rank as usize];
                if let Some(&t) = acts.last() {
                    check(
                        c.cycle >= t + timing.rrd_s,
                        i,
                        "tRRD_S violation".into(),
                        &mut violations,
                    );
                }
                // Same bank group: tRRD_L. Scan recent acts for same group.
                let group = c.bank / banks_per_group;
                for &(t, g) in recent_groups(log, i, banks_per_group).iter() {
                    if g == group && c.rank == log_rank(log, i, t) {
                        check(
                            c.cycle >= t + timing.rrd_l,
                            i,
                            "tRRD_L violation".into(),
                            &mut violations,
                        );
                        break;
                    }
                }
                if acts.len() >= 4 {
                    let t4 = acts[acts.len() - 4];
                    check(
                        c.cycle >= t4 + timing.faw,
                        i,
                        format!("tFAW violation on rank {}", c.rank),
                        &mut violations,
                    );
                }
                rank_acts[c.rank as usize].push(c.cycle);
                bank_state[bi].last_act = Some(c.cycle);
                bank_state[bi].open = true;
                bank_state[bi].last_rd = None;
                bank_state[bi].last_wr = None;
            }
            CommandKind::Pre => {
                let b = bank_state[bi];
                check(b.open, i, "PRE to closed bank".into(), &mut violations);
                if let Some(t) = b.last_act {
                    check(c.cycle >= t + timing.ras, i, "tRAS violation".into(), &mut violations);
                }
                if let Some(t) = b.last_rd {
                    check(c.cycle >= t + timing.rtp, i, "tRTP violation".into(), &mut violations);
                }
                if let Some(t) = b.last_wr {
                    check(
                        c.cycle >= t + timing.cwl + timing.burst_cycles + timing.wr,
                        i,
                        "tWR violation".into(),
                        &mut violations,
                    );
                }
                bank_state[bi].open = false;
                bank_state[bi].last_pre = Some(c.cycle);
            }
            CommandKind::Rd | CommandKind::Wr => {
                let b = bank_state[bi];
                check(b.open, i, "column command to closed bank".into(), &mut violations);
                if let Some(t) = b.last_act {
                    check(c.cycle >= t + timing.rcd, i, "tRCD violation".into(), &mut violations);
                }
                let lat = if c.kind == CommandKind::Rd { timing.cl } else { timing.cwl };
                let data_start = c.cycle + lat;
                check(data_start >= bus_busy_until, i, "data bus conflict".into(), &mut violations);
                bus_busy_until = data_start + timing.burst_cycles;
                if c.kind == CommandKind::Rd {
                    bank_state[bi].last_rd = Some(c.cycle);
                } else {
                    bank_state[bi].last_wr = Some(c.cycle);
                }
            }
            CommandKind::RefAb => {
                // Refresh legality (all banks closed) is asserted by the
                // scheduler itself; the log records it for energy accounting.
            }
        }
    }
    violations
}

#[derive(Debug, Clone, Default)]
struct AllBankTrace {
    open: bool,
    acts: u64,
    pres: u64,
    macs: u64,
    macs_in_row: u64,
    gb_seen: u64,
    last_act: Option<u64>,
    last_pre: Option<u64>,
    last_mac: Option<u64>,
}

/// Re-check an all-bank PIM command log (as produced by
/// [`crate::run_allbank_logged`]) against `timing` and the stream geometry
/// it was generated from. Returns all violations (empty = legal).
///
/// This is the PIM-side counterpart of [`verify_log`]: one independent
/// checker now covers both SoC traffic (per-bank ACT/RD/WR/PRE) and PIM
/// traffic (lock-step ACT-AB/MAC-AB/PRE-AB with global-buffer broadcast).
/// Checked rules, per rank:
///
/// * every global-buffer load for a row completes before that row's ACT-AB
///   (the broadcast input must be staged before any bank MACs against it);
/// * without double buffering, no GB load may issue while a row is open;
/// * MAC-AB only against an open row, first one no earlier than tRCD, then
///   spaced at least `mac_interval` apart, never more than `macs_per_row`;
/// * PRE-AB only after all of the row's MACs, respecting tRTP and tRAS;
/// * ACT-AB only to a closed rank, respecting tRP and tRC;
/// * command totals match the stream geometry (whole-log violations are
///   reported at index `log.len()`);
/// * at most one command per cycle on the shared channel bus.
pub fn verify_allbank_log(
    log: &[AllBankCommand],
    timing: &Timing,
    streams: &[PimStream],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let check = |cond: bool, index: usize, rule: String, out: &mut Vec<Violation>| {
        if !cond {
            out.push(Violation { index, rule });
        }
    };

    let by_rank: std::collections::HashMap<u64, &PimStream> =
        streams.iter().map(|s| (s.rank, s)).collect();
    let mut traces: std::collections::HashMap<u64, AllBankTrace> = std::collections::HashMap::new();
    let mut last_cycle: Option<u64> = None;

    for (i, c) in log.iter().enumerate() {
        if let Some(prev) = last_cycle {
            check(c.cycle > prev, i, "one command per cycle per channel".into(), &mut violations);
        }
        last_cycle = Some(c.cycle);
        let Some(s) = by_rank.get(&c.rank) else {
            violations.push(Violation {
                index: i,
                rule: format!("command for rank {} with no stream", c.rank),
            });
            continue;
        };
        let t = traces.entry(c.rank).or_default();
        match c.kind {
            AllBankCommandKind::GbLoad => {
                if !s.double_buffer {
                    check(
                        !t.open,
                        i,
                        "GB load while row open without double buffering".into(),
                        &mut violations,
                    );
                }
                t.gb_seen += 1;
            }
            AllBankCommandKind::ActAb => {
                check(!t.open, i, "ACT-AB while a row is open".into(), &mut violations);
                check(
                    t.gb_seen >= (t.acts + 1) * s.gb_cmds_per_row,
                    i,
                    "ACT-AB before the row's global buffer is staged".into(),
                    &mut violations,
                );
                if let Some(prev) = t.last_act {
                    check(
                        c.cycle >= prev + timing.rc,
                        i,
                        "tRC violation (all-bank)".into(),
                        &mut violations,
                    );
                }
                if let Some(prev) = t.last_pre {
                    check(
                        c.cycle >= prev + timing.rp,
                        i,
                        "tRP violation (all-bank)".into(),
                        &mut violations,
                    );
                }
                t.open = true;
                t.acts += 1;
                t.macs_in_row = 0;
                t.last_act = Some(c.cycle);
                t.last_mac = None;
            }
            AllBankCommandKind::MacAb => {
                check(t.open, i, "MAC-AB to closed banks".into(), &mut violations);
                check(
                    t.macs_in_row < s.macs_per_row,
                    i,
                    "more MAC-AB than column transfers in the row".into(),
                    &mut violations,
                );
                match t.last_mac {
                    None => {
                        if let Some(act) = t.last_act {
                            check(
                                c.cycle >= act + timing.rcd,
                                i,
                                "tRCD violation (all-bank)".into(),
                                &mut violations,
                            );
                        }
                    }
                    Some(prev) => check(
                        c.cycle >= prev + s.mac_interval,
                        i,
                        "MAC interval violation".into(),
                        &mut violations,
                    ),
                }
                t.last_mac = Some(c.cycle);
                t.macs_in_row += 1;
                t.macs += 1;
            }
            AllBankCommandKind::PreAb => {
                check(t.open, i, "PRE-AB to closed banks".into(), &mut violations);
                check(
                    t.macs_in_row == s.macs_per_row,
                    i,
                    "PRE-AB before the row's MACs completed".into(),
                    &mut violations,
                );
                if let Some(mac) = t.last_mac {
                    check(
                        c.cycle >= mac + timing.rtp,
                        i,
                        "tRTP violation (all-bank)".into(),
                        &mut violations,
                    );
                }
                if let Some(act) = t.last_act {
                    check(
                        c.cycle >= act + timing.ras,
                        i,
                        "tRAS violation (all-bank)".into(),
                        &mut violations,
                    );
                }
                t.open = false;
                t.pres += 1;
                t.last_pre = Some(c.cycle);
            }
        }
    }

    // Whole-log totals must match the stream geometry.
    for s in streams {
        let t = traces.get(&s.rank).cloned().unwrap_or_default();
        check(
            t.acts == s.rows,
            log.len(),
            format!("rank {}: {} ACT-AB for {} rows", s.rank, t.acts, s.rows),
            &mut violations,
        );
        check(
            t.pres == s.rows,
            log.len(),
            format!("rank {}: {} PRE-AB for {} rows", s.rank, t.pres, s.rows),
            &mut violations,
        );
        check(
            t.macs == s.rows * s.macs_per_row,
            log.len(),
            format!("rank {}: MAC-AB count {} != rows*macs_per_row", s.rank, t.macs),
            &mut violations,
        );
        check(
            t.gb_seen == s.rows * s.gb_cmds_per_row,
            log.len(),
            format!("rank {}: GB load count {} != rows*gb_cmds_per_row", s.rank, t.gb_seen),
            &mut violations,
        );
    }
    violations
}

/// Recent (cycle, bank-group) pairs of ACT commands before index `i`.
fn recent_groups(log: &[LoggedCommand], i: usize, banks_per_group: u64) -> Vec<(u64, u64)> {
    log[..i]
        .iter()
        .rev()
        .take(8)
        .filter(|c| c.kind == CommandKind::Act)
        .map(|c| (c.cycle, c.bank / banks_per_group))
        .collect()
}

/// Rank of the ACT at cycle `t` near index `i` (helper for tRRD_L checks).
fn log_rank(log: &[LoggedCommand], i: usize, t: u64) -> u64 {
    log[..i]
        .iter()
        .rev()
        .find(|c| c.kind == CommandKind::Act && c.cycle == t)
        .map(|c| c.rank)
        .unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DramSpec;

    fn timing() -> Timing {
        DramSpec::lpddr5_6400(16, 256 << 20).timing
    }

    fn act(cycle: u64, bank: u64, row: u64) -> LoggedCommand {
        LoggedCommand { cycle, kind: CommandKind::Act, rank: 0, bank, arg: row }
    }
    fn rd(cycle: u64, bank: u64, col: u64) -> LoggedCommand {
        LoggedCommand { cycle, kind: CommandKind::Rd, rank: 0, bank, arg: col }
    }
    fn pre(cycle: u64, bank: u64) -> LoggedCommand {
        LoggedCommand { cycle, kind: CommandKind::Pre, rank: 0, bank, arg: 0 }
    }

    #[test]
    fn legal_sequence_passes() {
        let tm = timing();
        let log = vec![
            act(0, 0, 5),
            rd(tm.rcd, 0, 0),
            rd(tm.rcd + tm.ccd_l, 0, 1),
            pre(tm.ras.max(tm.rcd + tm.ccd_l + tm.rtp), 0),
        ];
        assert!(verify_log(&log, &tm, 2, 16, 4).is_empty());
    }

    #[test]
    fn early_read_is_caught() {
        let tm = timing();
        let log = vec![act(0, 0, 5), rd(tm.rcd - 1, 0, 0)];
        let v = verify_log(&log, &tm, 2, 16, 4);
        assert!(v.iter().any(|v| v.rule.contains("tRCD")), "{v:?}");
    }

    #[test]
    fn early_precharge_is_caught() {
        let tm = timing();
        let log = vec![act(0, 0, 5), pre(tm.ras - 1, 0)];
        let v = verify_log(&log, &tm, 2, 16, 4);
        assert!(v.iter().any(|v| v.rule.contains("tRAS")), "{v:?}");
    }

    #[test]
    fn act_to_open_bank_is_caught() {
        let tm = timing();
        let log = vec![act(0, 0, 5), act(tm.rc, 0, 6)];
        let v = verify_log(&log, &tm, 2, 16, 4);
        assert!(v.iter().any(|v| v.rule.contains("ACT to open")), "{v:?}");
    }

    #[test]
    fn faw_is_caught() {
        let tm = timing();
        // Five ACTs to different banks spaced only tRRD apart.
        let log: Vec<_> = (0..5).map(|i| act(i * tm.rrd_s, i, 0)).collect();
        let v = verify_log(&log, &tm, 2, 16, 4);
        if 4 * tm.rrd_s < tm.faw {
            assert!(v.iter().any(|v| v.rule.contains("tFAW")), "{v:?}");
        }
    }

    #[test]
    fn bus_conflict_is_caught() {
        let tm = timing();
        let log = vec![
            act(0, 0, 5),
            rd(tm.rcd, 0, 0),
            // Second read one cycle later: bursts overlap.
            rd(tm.rcd + 1, 0, 1),
        ];
        let v = verify_log(&log, &tm, 2, 16, 4);
        assert!(v.iter().any(|v| v.rule.contains("bus")), "{v:?}");
    }

    mod allbank {
        use super::*;
        use crate::allbank::{run_allbank_logged, AllBankCommand, AllBankCommandKind, PimStream};

        fn streams() -> Vec<PimStream> {
            vec![
                PimStream {
                    rank: 0,
                    rows: 6,
                    gb_cmds_per_row: 64,
                    macs_per_row: 64,
                    mac_interval: 2,
                    double_buffer: true,
                },
                PimStream {
                    rank: 1,
                    rows: 4,
                    gb_cmds_per_row: 64,
                    macs_per_row: 64,
                    mac_interval: 2,
                    double_buffer: false,
                },
            ]
        }

        #[test]
        fn simulated_stream_is_legal() {
            let spec = DramSpec::lpddr5_6400(16, 256 << 20);
            let st = streams();
            let (_, log) = run_allbank_logged(&spec, &st);
            let v = verify_allbank_log(&log, &spec.timing, &st);
            assert!(v.is_empty(), "{v:?}");
        }

        #[test]
        fn early_mac_is_caught() {
            let spec = DramSpec::lpddr5_6400(16, 256 << 20);
            let st = streams();
            let (_, mut log) = run_allbank_logged(&spec, &st);
            // Pull the first MAC right on top of its ACT (violates tRCD).
            let act_at = log
                .iter()
                .position(|c| c.kind == AllBankCommandKind::ActAb)
                .map(|i| log[i].cycle)
                .unwrap();
            let first_mac = log.iter().position(|c| c.kind == AllBankCommandKind::MacAb).unwrap();
            log[first_mac].cycle = act_at; // also collides on the bus
            log.sort_by_key(|c| c.cycle);
            let v = verify_allbank_log(&log, &spec.timing, &st);
            assert!(
                v.iter().any(|v| v.rule.contains("tRCD") || v.rule.contains("per cycle")),
                "{v:?}"
            );
        }

        #[test]
        fn missing_gb_load_is_caught() {
            let spec = DramSpec::lpddr5_6400(16, 256 << 20);
            let st = streams();
            let (_, mut log) = run_allbank_logged(&spec, &st);
            let first_gb = log.iter().position(|c| c.kind == AllBankCommandKind::GbLoad).unwrap();
            log.remove(first_gb);
            let v = verify_allbank_log(&log, &spec.timing, &st);
            assert!(v.iter().any(|v| v.rule.contains("global buffer")), "{v:?}");
        }

        #[test]
        fn early_precharge_is_caught_allbank() {
            let spec = DramSpec::lpddr5_6400(16, 256 << 20);
            let st = streams();
            let (_, mut log) = run_allbank_logged(&spec, &st);
            // Drop one MAC: its row's PRE-AB now fires before completion.
            let a_mac = log.iter().position(|c| c.kind == AllBankCommandKind::MacAb).unwrap();
            log.remove(a_mac);
            let v = verify_allbank_log(&log, &spec.timing, &st);
            assert!(v.iter().any(|v| v.rule.contains("MACs completed")), "{v:?}");
        }

        #[test]
        fn unknown_rank_is_caught() {
            let spec = DramSpec::lpddr5_6400(16, 256 << 20);
            let st = streams();
            let log = vec![AllBankCommand { cycle: 0, rank: 7, kind: AllBankCommandKind::GbLoad }];
            let v = verify_allbank_log(&log, &spec.timing, &st);
            assert!(v.iter().any(|v| v.rule.contains("no stream")), "{v:?}");
        }
    }
}
