//! FR-FCFS scheduler for a single DRAM channel.
//!
//! Channels in an LPDDR5 system are fully independent (separate command and
//! data pins), so the multi-channel controller simulates each channel's
//! request stream in isolation and merges the statistics — serially or on
//! the [`facil_telemetry::pool`] workers, with identical results.
//!
//! Since PR 9 the *scheduling decision* and the *advance of simulated
//! time* are separated: [`ChannelCore`] owns the bank/rank state machines,
//! the request queue and the one-step decision procedure
//! ([`ChannelCore::decide`]), while a [`crate::engine::DramEngine`] decides
//! which cycles to visit. The cycle-stepped reference engine visits every
//! DRAM clock; the default event engine jumps straight to the next
//! actionable cycle (see [`crate::engine`]). Both produce bit-identical
//! command streams and [`DramStats`] — property-tested in
//! `tests/proptests.rs` (`event_engine_is_bit_identical_to_stepped`).
//!
//! The decision procedure is allocation-free in steady state: the request
//! queue is a flat buffer with tombstones (out-of-order FR-FCFS completions
//! mark entries dead instead of shifting the queue), the per-step candidate
//! set and lookahead window live in reused scratch buffers, and bank-level
//! ACT/PRE dedup uses a stamp array instead of a per-step hash set.

use std::sync::Arc;

use crate::bank::{BankState, RankState};
use crate::command::{CommandKind, Op, Request};
use crate::engine::EngineKind;
use crate::spec::DramSpec;
use crate::stats::DramStats;
use crate::verifylog::LoggedCommand;

/// Row-buffer management policy of the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagePolicy {
    /// Leave rows open after column accesses (default; rewards locality).
    Open,
    /// Precharge a bank as soon as no queued request hits its open row
    /// (rewards random traffic by hiding precharge latency).
    Closed,
}

/// Tunable scheduler parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// How many queued requests the scheduler may look ahead when
    /// reordering (models a finite command queue and bounds FR-FCFS
    /// starvation).
    pub window: usize,
    /// Row-buffer policy.
    pub page_policy: PagePolicy,
    /// Simulation engine driving the scheduler (cycle-stepped reference or
    /// next-event). The default honors the `FACIL_DRAM_ENGINE` environment
    /// variable (see [`EngineKind::default_kind`]); results are
    /// bit-identical either way, only wall-clock differs.
    pub engine: EngineKind,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            window: 32,
            page_policy: PagePolicy::Open,
            engine: EngineKind::default_kind(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Touch {
    Miss,
    Conflict,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    req: Request,
    touch: Option<Touch>,
    /// Tombstone: the request completed but its slot has not been
    /// reclaimed yet (reclaim happens when the queue head passes it).
    dead: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Column,
    Activate,
    Precharge,
}

/// Outcome of one scheduling decision at the current cycle (see
/// [`ChannelCore::decide`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// A command was issued; the clock has advanced one cycle past the
    /// issue slot (commands occupy the command bus for a cycle).
    Issued,
    /// No command is legal at the current cycle. The fields bound when the
    /// decision could change; until the earliest of them (or the next
    /// refresh deadline, [`ChannelCore::next_refresh_deadline`]) the
    /// decision at every intervening cycle is provably this same
    /// `Blocked` — which is what lets the event engine skip those cycles.
    Blocked {
        /// Earliest ready cycle among the current command candidates.
        next_ready: Option<u64>,
        /// Arrival cycle of the first not-yet-arrived request in the
        /// lookahead window (arrivals are globally non-decreasing, so no
        /// earlier request can appear).
        next_arrival: Option<u64>,
    },
}

/// Scheduling state of one DRAM channel: bank/rank timing state machines,
/// the tombstone request queue, statistics and the command log.
///
/// A [`crate::engine::DramEngine`] drives the core to completion through
/// this contract, upheld by both built-in engines and required of any
/// external implementation:
///
/// 1. per visited cycle, call [`ChannelCore::reclaim`], then
///    [`ChannelCore::service_refresh`], then [`ChannelCore::decide`];
/// 2. advance the clock only forward ([`ChannelCore::advance_to`] /
///    [`ChannelCore::tick`]), and never skip a cycle at which the decision
///    could differ: the next refresh deadline and the bounds returned by
///    [`Decision::Blocked`] must all cap the jump;
/// 3. stop once [`ChannelCore::pending`] reaches zero.
#[derive(Debug)]
pub struct ChannelCore {
    spec: Arc<DramSpec>,
    banks: Vec<Vec<BankState>>,
    ranks: Vec<RankState>,
    bus_busy_until: u64,
    last_data_end: u64,
    last_was_write: bool,
    now: u64,
    /// Flat request queue with tombstones: requests arrive at the tail,
    /// `head` skips reclaimed slots, and FR-FCFS completions in the middle
    /// of the window are marked [`Pending::dead`] instead of being shifted
    /// out (the old `VecDeque::remove` hot spot).
    buf: Vec<Pending>,
    /// First slot that may still be live; everything before it is dead.
    head: usize,
    /// Number of live (not yet completed) requests in `buf`.
    live: usize,
    stats: DramStats,
    log: Option<Vec<LoggedCommand>>,
    cfg: SchedConfig,
    /// Scratch: buffer indices of the current lookahead window.
    win: Vec<usize>,
    /// Scratch: per-step candidate set (buffer index, action, ready).
    cand: Vec<(usize, Action, u64)>,
    /// Scratch: per-(rank, bank) claim stamps replacing a per-step hash
    /// set — a bank is claimed this step iff its stamp equals `stamp`.
    bank_stamp: Vec<u64>,
    /// Current claim stamp (incremented every step; never reset).
    stamp: u64,
}

impl ChannelCore {
    fn new(spec: Arc<DramSpec>, cfg: SchedConfig) -> Self {
        let topo = spec.topology;
        let banks: Vec<Vec<BankState>> = (0..topo.ranks)
            .map(|_| (0..topo.banks()).map(|_| BankState::new()).collect())
            .collect();
        let ranks = (0..topo.ranks)
            .map(|_| RankState::new(topo.bank_groups as usize, spec.timing.refi))
            .collect();
        let total_banks = (topo.ranks * topo.banks()) as usize;
        let window = cfg.window;
        ChannelCore {
            spec,
            banks,
            ranks,
            bus_busy_until: 0,
            last_data_end: 0,
            last_was_write: false,
            now: 0,
            buf: Vec::new(),
            head: 0,
            live: 0,
            stats: DramStats::default(),
            log: None,
            cfg,
            win: Vec::with_capacity(window),
            cand: Vec::with_capacity(window),
            bank_stamp: vec![0; total_banks],
            stamp: 0,
        }
    }

    fn record(&mut self, kind: CommandKind, rank: u64, bank: u64, arg: u64) {
        if let Some(log) = &mut self.log {
            log.push(LoggedCommand { cycle: self.now, kind, rank, bank, arg });
        }
    }

    fn push(&mut self, req: Request) {
        debug_assert!(req.addr.rank < self.spec.topology.ranks);
        debug_assert!(req.addr.bank < self.spec.topology.banks());
        debug_assert!(req.addr.row < self.spec.topology.rows);
        debug_assert!(req.addr.column < self.spec.topology.columns());
        debug_assert!(
            self.buf.last().map(|p| p.req.arrival <= req.arrival).unwrap_or(true),
            "requests must arrive in order"
        );
        self.buf.push(Pending { req, touch: None, dead: false });
        self.live += 1;
    }

    /// Number of requests still queued. An engine's drive loop runs until
    /// this reaches zero.
    pub fn pending(&self) -> usize {
        self.live
    }

    /// Current simulated cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Arrival cycle of the oldest live request.
    ///
    /// While `now` is before this cycle the channel holds no arrived work
    /// at all, so no command can issue and refresh deadlines passed in the
    /// gap may be caught up lazily (their effect is deadline-derived, see
    /// [`ChannelCore::service_refresh`]) — the event engine uses this to
    /// jump over idle spans in one assignment.
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty (debug builds only); callers check
    /// [`ChannelCore::pending`] first.
    pub fn first_live_arrival(&self) -> u64 {
        debug_assert!(self.live > 0);
        self.buf[self.head].req.arrival
    }

    /// Advance the clock by one cycle.
    pub fn tick(&mut self) {
        self.now += 1;
    }

    /// Jump the clock forward to `target`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `target` is in the past — engines must
    /// always make forward progress.
    pub fn advance_to(&mut self, target: u64) {
        debug_assert!(target >= self.now, "clock must advance monotonically");
        self.now = target;
    }

    /// Earliest tREFI deadline over all ranks, if refresh is enabled.
    ///
    /// An engine may never jump past this cycle: an all-bank refresh
    /// closes open rows, which can turn a far-future row-hit candidate
    /// into a much earlier activate (so skipping the deadline would skip
    /// an actionable cycle).
    pub fn next_refresh_deadline(&self) -> Option<u64> {
        let min = self.ranks.iter().map(|r| r.next_ref).min().unwrap_or(u64::MAX);
        (min != u64::MAX).then_some(min)
    }

    /// Earliest cycle a column command for `op` may issue to `(rank, bank)`,
    /// including data-bus occupancy and read/write turnaround.
    fn column_ready(&self, rank: usize, bank: usize, op: Op) -> u64 {
        let tm = &self.spec.timing;
        let b = &self.banks[rank][bank];
        let (cmd_ready, lat) = match op {
            Op::Read => (b.next_rd, tm.cl),
            Op::Write => (b.next_wr, tm.cwl),
        };
        let mut data_ok = self.bus_busy_until;
        let turnaround = match (self.last_was_write, op) {
            (true, Op::Read) => tm.wtr,
            (false, Op::Write) => tm.rtw,
            _ => 0,
        };
        if self.stats.reads + self.stats.writes > 0 {
            data_ok = data_ok.max(self.last_data_end + turnaround);
        }
        cmd_ready.max(data_ok.saturating_sub(lat))
    }

    /// Service every rank whose tREFI deadline has passed.
    ///
    /// The refresh schedule is *deadline-exact*: the implicit all-bank
    /// precharge starts at `max(deadline, open banks' next_pre)` — derived
    /// from the tREFI deadline and the bank state machines, never from the
    /// cycle at which the engine happened to call this. A cycle-stepping
    /// engine (which observes the deadline on the cycle it falls) and an
    /// event engine (which may observe it late, after a jump) therefore
    /// produce the same `RefAb` log cycle and the same post-refresh bank
    /// state. No command can have issued between the deadline and the
    /// observation: engines service refresh before every decision, so the
    /// bank state still is the state at the deadline.
    pub fn service_refresh(&mut self) {
        let tm = self.spec.timing;
        // Service overdue deadlines in global (deadline, rank) order — NOT
        // rank-by-rank. A cycle-stepped driver visits every cycle and so
        // naturally interleaves ranks by deadline; an event driver may
        // observe several elapsed tREFI periods at once, and a per-rank
        // catch-up loop would then log all of rank 0's refreshes before
        // rank 1's, breaking log equality between the engines.
        loop {
            let mut best: Option<(u64, usize)> = None;
            for (r, rank) in self.ranks.iter().enumerate() {
                if rank.next_ref <= self.now && best.is_none_or(|(due, _)| rank.next_ref < due) {
                    best = Some((rank.next_ref, r));
                }
            }
            let Some((due, r)) = best else { break };
            // Close all open banks (implicit PREab once legal), then hold
            // the rank for tRFCab.
            let mut close_at = due;
            for b in &self.banks[r] {
                if b.open_row.is_some() {
                    close_at = close_at.max(b.next_pre);
                }
            }
            let ref_done = close_at + tm.rp + tm.rfc_ab;
            for b in &mut self.banks[r] {
                if b.open_row.is_some() {
                    b.open_row = None;
                }
                b.next_act = b.next_act.max(ref_done);
            }
            self.stats.refreshes += 1;
            if let Some(log) = &mut self.log {
                log.push(LoggedCommand {
                    cycle: close_at + tm.rp,
                    kind: CommandKind::RefAb,
                    rank: r as u64,
                    bank: 0,
                    arg: 0,
                });
            }
            self.ranks[r].next_ref += tm.refi;
        }
    }

    /// Reclaim the dead prefix: advance `head` past tombstones and compact
    /// the buffer once the reclaimed prefix dominates, keeping memory
    /// proportional to the live queue (amortized O(1) per completion).
    pub fn reclaim(&mut self) {
        while self.head < self.buf.len() && self.buf[self.head].dead {
            self.head += 1;
        }
        if self.head > 64 && self.head * 2 > self.buf.len() {
            self.buf.drain(..self.head);
            self.head = 0;
        }
    }

    /// Claim `(rank, bank)` for a bank-level command this step; the first
    /// (oldest) claimant wins. Stamp comparison makes clearing free.
    fn claim_bank(&mut self, rank: usize, bank: usize) -> bool {
        let idx = rank * self.spec.topology.banks() as usize + bank;
        if self.bank_stamp[idx] == self.stamp {
            false
        } else {
            self.bank_stamp[idx] = self.stamp;
            true
        }
    }

    /// True if any of the first `window` live queue entries (regardless of
    /// arrival time when `arrived_only` is false) targets `row` of
    /// `(rank, bank)`.
    fn window_wants_row(&self, rank: usize, bank: usize, row: u64, arrived_only: bool) -> bool {
        let mut seen = 0;
        let mut idx = self.head;
        while seen < self.cfg.window && idx < self.buf.len() {
            let p = &self.buf[idx];
            idx += 1;
            if p.dead {
                continue;
            }
            seen += 1;
            if (!arrived_only || p.req.arrival <= self.now)
                && p.req.addr.rank as usize == rank
                && p.req.addr.bank as usize == bank
                && p.req.addr.row == row
            {
                return true;
            }
        }
        false
    }

    /// One scheduling decision at the current cycle: issue the best legal
    /// command (FR-FCFS: row-hit columns, then activates, then precharges;
    /// oldest wins ties) or report why nothing can issue.
    ///
    /// Pure in simulated time: the only clock movement is the one-cycle
    /// command-bus slot consumed by an issued command. How the clock moves
    /// between decisions is entirely the engine's business.
    pub fn decide(&mut self) -> Decision {
        debug_assert!(self.live > 0);
        let tm = self.spec.timing;
        let bpg = self.spec.topology.banks_per_group as usize;

        // Collect the lookahead window: buffer indices of the first
        // `window` live requests, in arrival order.
        let mut win = std::mem::take(&mut self.win);
        win.clear();
        {
            let mut idx = self.head;
            while win.len() < self.cfg.window && idx < self.buf.len() {
                if !self.buf[idx].dead {
                    win.push(idx);
                }
                idx += 1;
            }
        }

        // Build the candidate set: (buffer index, action, ready cycle).
        // Bank-level actions are deduplicated as they are generated: only
        // the oldest request per bank may drive an ACT/PRE (younger ones
        // would duplicate the same command).
        let mut cand = std::mem::take(&mut self.cand);
        cand.clear();
        self.stamp += 1;
        let mut next_arrival_beyond: Option<u64> = None;
        for &i in &win {
            let p = self.buf[i];
            if p.req.arrival > self.now {
                next_arrival_beyond = Some(p.req.arrival);
                break;
            }
            let rank = p.req.addr.rank as usize;
            let bank = p.req.addr.bank as usize;
            match self.banks[rank][bank].open_row {
                Some(row) if row == p.req.addr.row => {
                    cand.push((i, Action::Column, self.column_ready(rank, bank, p.req.op)));
                }
                Some(open) => {
                    // Only precharge if no earlier/other window request still
                    // hits the open row of this bank (FR-FCFS serves hits
                    // before closing).
                    let hit_waiting = self.window_wants_row(rank, bank, open, true);
                    if !hit_waiting && self.claim_bank(rank, bank) {
                        cand.push((i, Action::Precharge, self.banks[rank][bank].next_pre));
                    }
                }
                None => {
                    let ready = self.banks[rank][bank]
                        .next_act
                        .max(self.ranks[rank].act_ready(bank / bpg, &tm));
                    if self.claim_bank(rank, bank) {
                        cand.push((i, Action::Activate, ready));
                    }
                }
            }
        }

        // Pick the best issuable candidate: column (row hit) first, then
        // activates, then precharges; oldest wins ties.
        let now = self.now;
        let issuable = |a: Action| {
            cand.iter()
                .filter(|(_, act, ready)| *act == a && *ready <= now)
                .min_by_key(|(i, _, _)| *i)
                .copied()
        };
        let chosen = issuable(Action::Column)
            .or_else(|| issuable(Action::Activate))
            .or_else(|| issuable(Action::Precharge));

        let decision = match chosen {
            Some((i, Action::Column, _)) => {
                let p = self.buf[i];
                let rank = p.req.addr.rank as usize;
                let bank = p.req.addr.bank as usize;
                let (lat, op) = match p.req.op {
                    Op::Read => (tm.cl, Op::Read),
                    Op::Write => (tm.cwl, Op::Write),
                };
                let data_start = self.now + lat;
                debug_assert!(data_start >= self.bus_busy_until);
                let data_end = data_start + tm.burst_cycles;
                match op {
                    Op::Read => {
                        self.banks[rank][bank].read(self.now, &tm);
                        self.stats.reads += 1;
                        self.record(CommandKind::Rd, rank as u64, bank as u64, p.req.addr.column);
                    }
                    Op::Write => {
                        self.banks[rank][bank].write(self.now, &tm);
                        self.stats.writes += 1;
                        self.record(CommandKind::Wr, rank as u64, bank as u64, p.req.addr.column);
                    }
                }
                self.bus_busy_until = data_end;
                self.last_data_end = data_end;
                self.last_was_write = op == Op::Write;
                match p.touch {
                    None => self.stats.row_hits += 1,
                    Some(Touch::Miss) => self.stats.row_misses += 1,
                    Some(Touch::Conflict) => self.stats.row_conflicts += 1,
                }
                // Busy time is derived from the command's own data phase —
                // bursts never overlap (`bus_busy_until` forbids it), so
                // the sum over commands is exact whether the engine stepped
                // through the burst or jumped over it.
                self.stats.busy_cycles += tm.burst_cycles;
                self.stats.finish_cycle = self.stats.finish_cycle.max(data_end);
                self.buf[i].dead = true;
                self.live -= 1;
                self.now += 1;
                // Closed-page policy: close the row immediately if nothing
                // in the window still wants it (issued as an implicit
                // auto-precharge once tRAS/tRTP/tWR allow).
                if self.cfg.page_policy == PagePolicy::Closed {
                    let row = self.banks[rank][bank].open_row;
                    if let Some(row) = row {
                        if !self.window_wants_row(rank, bank, row, false) {
                            let b = &mut self.banks[rank][bank];
                            let when = b.next_pre.max(self.now);
                            b.open_row = None;
                            b.next_act = b.next_act.max(when + tm.rp);
                            self.stats.precharges += 1;
                            // Auto-precharges are not logged: they take
                            // effect at a (possibly future) cycle `when`,
                            // which would break the log's time ordering.
                        }
                    }
                }
                Decision::Issued
            }
            Some((i, Action::Activate, _)) => {
                let addr = self.buf[i].req.addr;
                let rank = addr.rank as usize;
                let bank = addr.bank as usize;
                self.banks[rank][bank].activate(self.now, addr.row, &tm);
                self.ranks[rank].record_act(self.now, bank / bpg);
                self.stats.activates += 1;
                self.record(CommandKind::Act, addr.rank, addr.bank, addr.row);
                if self.buf[i].touch.is_none() {
                    self.buf[i].touch = Some(Touch::Miss);
                }
                self.now += 1;
                Decision::Issued
            }
            Some((i, Action::Precharge, _)) => {
                let addr = self.buf[i].req.addr;
                let rank = addr.rank as usize;
                let bank = addr.bank as usize;
                self.banks[rank][bank].precharge(self.now, &tm);
                self.stats.precharges += 1;
                self.record(CommandKind::Pre, addr.rank, addr.bank, 0);
                self.buf[i].touch = Some(Touch::Conflict);
                self.now += 1;
                Decision::Issued
            }
            None => Decision::Blocked {
                next_ready: cand.iter().map(|(_, _, r)| *r).min(),
                next_arrival: next_arrival_beyond,
            },
        };

        // Hand the scratch buffers back for the next decision.
        self.win = win;
        self.cand = cand;
        decision
    }

    /// Derive the idle-cycle counter once a drive loop finishes: everything
    /// up to the finish cycle that was not data-bus occupancy. Computed
    /// from command timestamps only, so it is identical whether the engine
    /// stepped through or jumped over the idle spans.
    fn finalize_stats(&mut self) {
        self.stats.idle_cycles = self.stats.finish_cycle.saturating_sub(self.stats.busy_cycles);
    }
}

/// Single-channel FR-FCFS, open-page DRAM scheduler: a [`ChannelCore`]
/// driven by the configured [`crate::engine::DramEngine`].
#[derive(Debug)]
pub struct ChannelSim {
    core: ChannelCore,
    engine: EngineKind,
}

impl ChannelSim {
    /// Create a scheduler for one channel of `spec` with custom parameters.
    pub fn with_config(spec: &DramSpec, cfg: SchedConfig) -> Self {
        Self::from_shared(Arc::new(spec.clone()), cfg)
    }

    /// Create a scheduler for one channel of `spec`.
    pub fn new(spec: &DramSpec) -> Self {
        Self::from_shared(Arc::new(spec.clone()), SchedConfig::default())
    }

    /// Create a scheduler sharing an already-wrapped spec — the
    /// multi-channel [`crate::controller::DramSystem`] hands every channel
    /// the same [`Arc`] instead of deep-cloning the spec per channel.
    pub fn from_shared(spec: Arc<DramSpec>, cfg: SchedConfig) -> Self {
        ChannelSim { core: ChannelCore::new(spec, cfg), engine: cfg.engine }
    }

    /// The engine this scheduler runs on.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Record every issued device command for later inspection and
    /// independent legality verification (see [`crate::verifylog`]).
    /// The log is preallocated for the already-queued requests when
    /// [`ChannelSim::run`] starts.
    pub fn enable_logging(&mut self) {
        self.core.log = Some(Vec::new());
    }

    /// The command log, if logging was enabled.
    pub fn log(&self) -> Option<&[LoggedCommand]> {
        self.core.log.as_deref()
    }

    /// Enqueue a request. Requests must be pushed in non-decreasing arrival
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the request targets a different channel than previous ones
    /// implied by its address fields being out of range, or if arrival order
    /// is violated (debug builds only).
    pub fn push(&mut self, req: Request) {
        self.core.push(req);
    }

    /// Number of requests still queued.
    pub fn pending(&self) -> usize {
        self.core.pending()
    }

    /// Drain the queue, scheduling every request to completion on the
    /// configured engine, and return the statistics for this channel.
    pub fn run(&mut self) -> DramStats {
        if let Some(log) = &mut self.core.log {
            // ~1 ACT per miss/conflict + 1 column per request is the common
            // shape; reserving twice the queue depth avoids log regrowth.
            log.reserve(2 * self.core.live + 8);
        }
        self.engine.engine().drive(&mut self.core);
        self.core.finalize_stats();
        self.core.stats
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &DramStats {
        &self.core.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::DramAddress;

    fn small_spec() -> DramSpec {
        // 1-channel LPDDR5-6400, 256 MB: keeps row counts small in tests.
        DramSpec::lpddr5_6400(16, 256 << 20)
    }

    fn addr(rank: u64, bank: u64, row: u64, column: u64) -> DramAddress {
        DramAddress { channel: 0, rank, bank, row, column }
    }

    #[test]
    fn single_read_latency_is_act_plus_rcd_cl_burst() {
        let spec = small_spec();
        let mut ch = ChannelSim::new(&spec);
        ch.push(Request::read(addr(0, 0, 0, 0)));
        let stats = ch.run();
        let tm = &spec.timing;
        // ACT at 0, RD at tRCD, data ends at tRCD+CL+burst.
        assert_eq!(stats.finish_cycle, tm.rcd + tm.cl + tm.burst_cycles);
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.activates, 1);
        assert_eq!(stats.row_misses, 1);
        assert_eq!(stats.row_hits, 0);
    }

    #[test]
    fn same_row_reads_are_hits() {
        let spec = small_spec();
        let mut ch = ChannelSim::new(&spec);
        for c in 0..8 {
            ch.push(Request::read(addr(0, 0, 0, c)));
        }
        let stats = ch.run();
        assert_eq!(stats.row_misses, 1);
        assert_eq!(stats.row_hits, 7);
        assert_eq!(stats.activates, 1);
    }

    #[test]
    fn row_conflict_forces_precharge() {
        let spec = small_spec();
        let mut ch = ChannelSim::new(&spec);
        ch.push(Request::read(addr(0, 0, 0, 0)));
        ch.push(Request::read(addr(0, 0, 1, 0)));
        let stats = ch.run();
        assert_eq!(stats.row_misses, 1);
        assert_eq!(stats.row_conflicts, 1);
        assert_eq!(stats.precharges, 1);
        assert_eq!(stats.activates, 2);
    }

    #[test]
    fn streaming_one_row_hits_peak_bandwidth() {
        let spec = small_spec();
        let mut ch = ChannelSim::new(&spec);
        let cols = spec.topology.columns();
        for c in 0..cols {
            ch.push(Request::read(addr(0, 0, 0, c)));
        }
        let stats = ch.run();
        // Steady state: one burst per tCCD; overhead only from the initial
        // ACT+CL. Bandwidth must exceed 80% of the channel peak.
        let ns = spec.cycles_to_ns(stats.finish_cycle);
        let bw = stats.bytes(spec.topology.transfer_bytes) as f64 / (ns * 1e-9);
        assert!(bw > 0.8 * spec.channel_bandwidth_bytes_per_sec(), "bw {bw:.3e}");
    }

    #[test]
    fn bank_interleaving_hides_row_activation() {
        let spec = small_spec();
        let mut ch = ChannelSim::new(&spec);
        // Stream across all 16 banks, 4 rows each, column-major like a
        // conventional interleaved layout.
        for row in 0..4 {
            for col in 0..spec.topology.columns() {
                for bank in 0..spec.topology.banks() {
                    ch.push(Request::read(addr(0, bank, row, col)));
                }
            }
        }
        let stats = ch.run();
        let ns = spec.cycles_to_ns(stats.finish_cycle);
        let bw = stats.bytes(spec.topology.transfer_bytes) as f64 / (ns * 1e-9);
        assert!(
            bw > 0.9 * spec.channel_bandwidth_bytes_per_sec(),
            "interleaved stream should be near peak, got {:.1}%",
            100.0 * bw / spec.channel_bandwidth_bytes_per_sec()
        );
    }

    #[test]
    fn fr_fcfs_serves_row_hits_before_conflicting_precharge() {
        let spec = small_spec();
        let mut ch = ChannelSim::new(&spec);
        ch.push(Request::read(addr(0, 0, 0, 0)));
        // Older request to a different row of bank 0, then a younger hit.
        ch.push(Request::read(addr(0, 0, 5, 0)));
        ch.push(Request::read(addr(0, 0, 0, 1)));
        let stats = ch.run();
        // The younger same-row read must be served as a hit (no extra
        // conflict for it).
        assert_eq!(stats.row_hits, 1);
        assert_eq!(stats.row_conflicts, 1);
        assert_eq!(stats.row_misses, 1);
    }

    #[test]
    fn writes_then_reads_respect_turnaround() {
        let spec = small_spec();
        let mut ch = ChannelSim::new(&spec);
        ch.push(Request::write(addr(0, 0, 0, 0)));
        ch.push(Request::read(addr(0, 0, 0, 1)));
        let stats = ch.run();
        let tm = &spec.timing;
        // The read data cannot start before the write data ended plus tWTR.
        let wr_cmd = tm.rcd;
        let wr_data_end = wr_cmd + tm.cwl + tm.burst_cycles;
        assert!(stats.finish_cycle >= wr_data_end + tm.wtr + tm.burst_cycles);
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.writes, 1);
    }

    #[test]
    fn refresh_is_issued_on_long_streams() {
        let spec = small_spec();
        let mut ch = ChannelSim::new(&spec);
        // Enough work to cross at least one tREFI boundary.
        let per_refi = spec.timing.refi / spec.timing.ccd_l + 10;
        let cols = spec.topology.columns();
        let mut n = 0;
        'outer: for row in 0..spec.topology.rows {
            for col in 0..cols {
                ch.push(Request::read(addr(0, 0, row, col)));
                n += 1;
                if n > per_refi {
                    break 'outer;
                }
            }
        }
        let stats = ch.run();
        assert!(stats.refreshes > 0, "expected refreshes on a long stream");
    }

    #[test]
    fn closed_page_policy_wins_on_random_traffic() {
        let spec = small_spec();
        // Random single-access-per-row traffic.
        let make_reqs = || {
            (0..512u64).map(|i| {
                let x = i.wrapping_mul(0x9E3779B97F4A7C15);
                Request::read(addr(x % 2, (x >> 8) % 16, (x >> 16) % 256, (x >> 32) % 64))
            })
        };
        let mut open = ChannelSim::new(&spec);
        let mut closed = ChannelSim::with_config(
            &spec,
            SchedConfig { page_policy: PagePolicy::Closed, ..Default::default() },
        );
        for r in make_reqs() {
            open.push(r);
        }
        for r in make_reqs() {
            closed.push(r);
        }
        let so = open.run();
        let sc = closed.run();
        assert!(
            sc.finish_cycle <= so.finish_cycle,
            "closed page should win on row-conflict-heavy traffic: {} vs {}",
            sc.finish_cycle,
            so.finish_cycle
        );
        assert!(sc.row_conflicts < so.row_conflicts);
    }

    #[test]
    fn open_page_policy_wins_on_streaming_traffic() {
        let spec = small_spec();
        let make_reqs = || (0..512u64).map(|c| Request::read(addr(0, 0, c / 64, c % 64)));
        let mut open = ChannelSim::new(&spec);
        let mut closed = ChannelSim::with_config(
            &spec,
            SchedConfig { page_policy: PagePolicy::Closed, ..Default::default() },
        );
        for r in make_reqs() {
            open.push(r);
        }
        for r in make_reqs() {
            closed.push(r);
        }
        let so = open.run();
        let sc = closed.run();
        assert!(
            so.finish_cycle <= sc.finish_cycle + 8,
            "{} vs {}",
            so.finish_cycle,
            sc.finish_cycle
        );
        assert!(so.row_hits >= sc.row_hits);
    }

    #[test]
    fn narrow_window_hurts_interleaved_traffic() {
        let spec = small_spec();
        let make_reqs = || {
            (0..512u64).map(|i| {
                let x = i.wrapping_mul(0x9E3779B97F4A7C15);
                Request::read(addr(0, (x >> 8) % 16, (x >> 16) % 64, i % 64))
            })
        };
        let mut wide =
            ChannelSim::with_config(&spec, SchedConfig { window: 32, ..Default::default() });
        let mut narrow =
            ChannelSim::with_config(&spec, SchedConfig { window: 2, ..Default::default() });
        for r in make_reqs() {
            wide.push(r);
        }
        for r in make_reqs() {
            narrow.push(r);
        }
        let sw = wide.run();
        let sn = narrow.run();
        assert!(sw.finish_cycle <= sn.finish_cycle, "{} vs {}", sw.finish_cycle, sn.finish_cycle);
    }

    #[test]
    fn arrival_gaps_are_respected() {
        let spec = small_spec();
        let mut ch = ChannelSim::new(&spec);
        ch.push(Request::read(addr(0, 0, 0, 0)).at(10_000));
        let stats = ch.run();
        assert!(stats.finish_cycle >= 10_000);
    }

    #[test]
    fn idle_accounting_partitions_the_finish_cycle() {
        let spec = small_spec();
        let mut ch = ChannelSim::new(&spec);
        // Two requests separated by a long idle gap.
        ch.push(Request::read(addr(0, 0, 0, 0)));
        ch.push(Request::read(addr(0, 0, 0, 1)).at(50_000));
        let stats = ch.run();
        assert_eq!(stats.busy_cycles, 2 * spec.timing.burst_cycles);
        assert_eq!(stats.idle_cycles + stats.busy_cycles, stats.finish_cycle);
        assert!(stats.idle_cycles > 40_000, "gap must be counted as idle");
    }
}
