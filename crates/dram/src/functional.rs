//! Functional (data-value) memory model.
//!
//! Stores bytes keyed by *device* address, so data written through one
//! PA-to-DA mapping and read through another behaves exactly like real DRAM
//! cells: same cells, different views. This is what lets the integration
//! tests demonstrate FACIL's core claim — the SoC reads the same weights the
//! PIM computes on, without re-layout — at the level of actual data values.

use std::collections::HashMap;

use crate::addr::{DramAddress, Topology};
use crate::mapper::{AddressMapper, MapFault};

/// A transfer-granular backing store of DRAM cell contents.
///
/// This is the pluggable data layer of the functional simulation (the
/// Ramulator 2.1 composability lesson: the data path is a layer *under* the
/// timing model, not a fork of it). Anything that can read and write whole
/// transfers by device address — the sparse [`FunctionalMemory`], a
/// bank-sliced store, a mmap'd image — gets byte-level PA access through the
/// provided `write_bytes`/`read_bytes`, and the PIM functional paths
/// (`facil-pim`, `facil-fidelity`) execute over it unchanged.
pub trait CellStore {
    /// Geometry of the store.
    fn topology(&self) -> &Topology;

    /// Read one whole transfer at a device address. Cells never written
    /// read as zero.
    fn load_transfer(&self, addr: DramAddress) -> Vec<u8>;

    /// Write one whole transfer at a device address.
    ///
    /// # Panics
    ///
    /// Implementations panic if `data` is not exactly one transfer long.
    fn store_transfer(&mut self, addr: DramAddress, data: &[u8]);

    /// Write `data` starting at physical byte address `pa`, translating
    /// each transfer through `mapper`. Partial transfers read-modify-write
    /// the stored cell.
    ///
    /// # Errors
    ///
    /// Propagates the first [`MapFault`] the mapper raises; bytes before
    /// the faulting transfer are already written.
    fn write_bytes<M: AddressMapper>(
        &mut self,
        mapper: &M,
        pa: u64,
        data: &[u8],
    ) -> Result<(), MapFault> {
        let tx = self.topology().transfer_bytes;
        let mut cur = pa;
        let mut remaining = data;
        while !remaining.is_empty() {
            let offset = (cur % tx) as usize;
            let chunk = ((tx as usize) - offset).min(remaining.len());
            let addr = mapper.map(cur)?;
            if chunk == tx as usize {
                self.store_transfer(addr, &remaining[..chunk]);
            } else {
                let mut block = self.load_transfer(addr);
                block[offset..offset + chunk].copy_from_slice(&remaining[..chunk]);
                self.store_transfer(addr, &block);
            }
            remaining = &remaining[chunk..];
            cur += chunk as u64;
        }
        Ok(())
    }

    /// Read `len` bytes starting at physical byte address `pa` through
    /// `mapper`. Unwritten cells read as zero.
    ///
    /// # Errors
    ///
    /// Propagates the first [`MapFault`] the mapper raises.
    fn read_bytes<M: AddressMapper>(
        &self,
        mapper: &M,
        pa: u64,
        len: usize,
    ) -> Result<Vec<u8>, MapFault> {
        let tx = self.topology().transfer_bytes;
        let mut out = Vec::with_capacity(len);
        let mut cur = pa;
        while out.len() < len {
            let offset = (cur % tx) as usize;
            let chunk = ((tx as usize) - offset).min(len - out.len());
            let block = self.load_transfer(mapper.map(cur)?);
            out.extend_from_slice(&block[offset..offset + chunk]);
            cur += chunk as u64;
        }
        Ok(out)
    }
}

/// Byte-accurate DRAM contents, sparse (unwritten cells read as zero).
#[derive(Debug, Clone)]
pub struct FunctionalMemory {
    topo: Topology,
    /// Transfer-sized blocks keyed by the flat device-transfer index.
    blocks: HashMap<u64, Vec<u8>>,
}

impl FunctionalMemory {
    /// Create an empty functional memory with the given geometry.
    pub fn new(topo: Topology) -> Self {
        FunctionalMemory { topo, blocks: HashMap::new() }
    }

    /// Geometry of this memory.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    fn block_mut(&mut self, addr: DramAddress) -> &mut Vec<u8> {
        let key = addr.flat_index(&self.topo);
        let tx = self.topo.transfer_bytes as usize;
        self.blocks.entry(key).or_insert_with(|| vec![0u8; tx])
    }

    /// Write `data` starting at physical byte address `pa`, translating each
    /// transfer through `mapper`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`MapFault`] the mapper raises; bytes before the
    /// faulting transfer are already written.
    pub fn write_bytes<M: AddressMapper>(
        &mut self,
        mapper: &M,
        pa: u64,
        data: &[u8],
    ) -> Result<(), MapFault> {
        let tx = self.topo.transfer_bytes;
        let mut cur = pa;
        let mut remaining = data;
        while !remaining.is_empty() {
            let offset = (cur % tx) as usize;
            let chunk = ((tx as usize) - offset).min(remaining.len());
            let addr = mapper.map(cur)?;
            debug_assert!(addr.is_valid(&self.topo));
            let block = self.block_mut(addr);
            block[offset..offset + chunk].copy_from_slice(&remaining[..chunk]);
            remaining = &remaining[chunk..];
            cur += chunk as u64;
        }
        Ok(())
    }

    /// Read `len` bytes starting at physical byte address `pa` through
    /// `mapper`. Unwritten cells read as zero.
    ///
    /// # Errors
    ///
    /// Propagates the first [`MapFault`] the mapper raises.
    pub fn read_bytes<M: AddressMapper>(
        &self,
        mapper: &M,
        pa: u64,
        len: usize,
    ) -> Result<Vec<u8>, MapFault> {
        let tx = self.topo.transfer_bytes;
        let mut out = Vec::with_capacity(len);
        let mut cur = pa;
        while out.len() < len {
            let offset = (cur % tx) as usize;
            let chunk = ((tx as usize) - offset).min(len - out.len());
            let addr = mapper.map(cur)?;
            debug_assert!(addr.is_valid(&self.topo));
            let key = addr.flat_index(&self.topo);
            match self.blocks.get(&key) {
                Some(block) => out.extend_from_slice(&block[offset..offset + chunk]),
                None => out.extend(std::iter::repeat_n(0u8, chunk)),
            }
            cur += chunk as u64;
        }
        Ok(out)
    }

    /// Read one whole transfer at a device address (used by the PIM engine,
    /// which addresses cells directly).
    pub fn read_transfer(&self, addr: DramAddress) -> Vec<u8> {
        let key = addr.flat_index(&self.topo);
        self.blocks
            .get(&key)
            .cloned()
            .unwrap_or_else(|| vec![0u8; self.topo.transfer_bytes as usize])
    }

    /// Write one whole transfer at a device address.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one transfer long.
    pub fn write_transfer(&mut self, addr: DramAddress, data: &[u8]) {
        assert_eq!(data.len() as u64, self.topo.transfer_bytes);
        *self.block_mut(addr) = data.to_vec();
    }

    /// Number of distinct transfers written so far.
    pub fn touched_transfers(&self) -> usize {
        self.blocks.len()
    }
}

impl CellStore for FunctionalMemory {
    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn load_transfer(&self, addr: DramAddress) -> Vec<u8> {
        self.read_transfer(addr)
    }

    fn store_transfer(&mut self, addr: DramAddress, data: &[u8]) {
        self.write_transfer(addr, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::FnMapper;

    fn topo() -> Topology {
        Topology::new(2, 1, 2, 2, 64, 256, 32)
    }

    fn identity_mapper(t: Topology) -> impl AddressMapper {
        FnMapper(move |pa: u64| {
            let mut x = pa >> t.tx_bits();
            let mut take = |bits: u32| {
                let v = x & ((1 << bits) - 1);
                x >>= bits;
                v
            };
            DramAddress {
                column: take(t.column_bits()),
                bank: take(t.bank_bits()),
                channel: take(t.channel_bits()),
                rank: take(t.rank_bits()),
                row: take(t.row_bits()),
            }
        })
    }

    /// A different (bank-swizzled) mapper over the same cells.
    fn swizzled_mapper(t: Topology) -> impl AddressMapper {
        FnMapper(move |pa: u64| {
            let mut x = pa >> t.tx_bits();
            let mut take = |bits: u32| {
                let v = x & ((1 << bits) - 1);
                x >>= bits;
                v
            };
            // Bank bits first instead of column bits.
            DramAddress {
                bank: take(t.bank_bits()),
                column: take(t.column_bits()),
                channel: take(t.channel_bits()),
                rank: take(t.rank_bits()),
                row: take(t.row_bits()),
            }
        })
    }

    #[test]
    fn roundtrip_same_mapper() {
        let t = topo();
        let m = identity_mapper(t);
        let mut mem = FunctionalMemory::new(t);
        let data: Vec<u8> = (0..=255).collect();
        mem.write_bytes(&m, 100, &data).unwrap(); // unaligned start
        assert_eq!(mem.read_bytes(&m, 100, 256).unwrap(), data);
        assert_eq!(mem.read_bytes(&m, 0, 4).unwrap(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn different_mappers_see_same_cells_differently() {
        // Small topology so the test can cover the whole address space:
        // both mappers are permutations of the same PA space, so over the
        // full space the byte multiset must be preserved.
        let t = Topology::new(2, 1, 2, 2, 4, 256, 32);
        let a = identity_mapper(t);
        let b = swizzled_mapper(t);
        let cap = t.capacity_bytes() as usize;
        let mut mem = FunctionalMemory::new(t);
        let data: Vec<u8> = (0..cap).map(|i| (i % 251) as u8).collect();
        mem.write_bytes(&a, 0, &data).unwrap();
        let through_b = mem.read_bytes(&b, 0, cap).unwrap();
        // Different bit assignment => a different view...
        assert_ne!(through_b, data);
        // ...but the same cells: full-space multiset is preserved.
        let mut sorted_a = data.clone();
        let mut sorted_b = through_b.clone();
        sorted_a.sort_unstable();
        sorted_b.sort_unstable();
        assert_eq!(sorted_a, sorted_b, "same multiset of bytes through any bijective mapping");
        // And reading back through the original mapping is intact.
        assert_eq!(mem.read_bytes(&a, 0, cap).unwrap(), data);
    }

    #[test]
    fn cell_store_trait_agrees_with_inherent_paths() {
        // The provided trait defaults (used by any CellStore implementor)
        // must behave exactly like FunctionalMemory's own byte paths.
        let t = topo();
        let m = identity_mapper(t);
        let mut inherent = FunctionalMemory::new(t);
        let mut via_trait = FunctionalMemory::new(t);
        let data: Vec<u8> = (0..300).map(|i| (i % 253) as u8).collect();
        inherent.write_bytes(&m, 37, &data).unwrap();
        CellStore::write_bytes(&mut via_trait, &m, 37, &data).unwrap();
        assert_eq!(
            inherent.read_bytes(&m, 0, 512).unwrap(),
            CellStore::read_bytes(&via_trait, &m, 0, 512).unwrap()
        );
        assert_eq!(inherent.touched_transfers(), via_trait.touched_transfers());
    }

    #[test]
    fn transfer_level_access() {
        let t = topo();
        let mut mem = FunctionalMemory::new(t);
        let addr = DramAddress { channel: 1, rank: 0, bank: 3, row: 5, column: 7 };
        mem.write_transfer(addr, &[7u8; 32]);
        assert_eq!(mem.read_transfer(addr), vec![7u8; 32]);
        assert_eq!(mem.touched_transfers(), 1);
        let other = DramAddress { channel: 0, ..addr };
        assert_eq!(mem.read_transfer(other), vec![0u8; 32]);
    }
}
