//! Multi-channel DRAM backend: distributes decoded requests to per-channel
//! FR-FCFS schedulers and aggregates statistics.

use crate::channel::ChannelSim;
use crate::command::Request;
use crate::spec::DramSpec;
use crate::stats::{DramStats, SimResult};

/// Multi-channel DRAM memory system.
///
/// Channels are independent in LPDDR5; each channel's request sub-stream is
/// scheduled in isolation and the elapsed time of the whole stream is the
/// maximum over channels.
#[derive(Debug)]
pub struct DramSystem {
    spec: DramSpec,
    channels: Vec<ChannelSim>,
}

impl DramSystem {
    /// Create a backend for `spec`.
    pub fn new(spec: &DramSpec) -> Self {
        let channels = (0..spec.topology.channels).map(|_| ChannelSim::new(spec)).collect();
        DramSystem { spec: spec.clone(), channels }
    }

    /// Specification this system was built from.
    pub fn spec(&self) -> &DramSpec {
        &self.spec
    }

    /// Enable command logging on every channel (see
    /// [`crate::verifylog`]).
    pub fn enable_logging(&mut self) {
        for ch in &mut self.channels {
            ch.enable_logging();
        }
    }

    /// Per-channel command logs, if logging was enabled.
    pub fn logs(&self) -> Vec<&[crate::verifylog::LoggedCommand]> {
        self.channels.iter().filter_map(|c| c.log()).collect()
    }

    /// Enqueue a decoded request on its target channel.
    ///
    /// # Panics
    ///
    /// Panics if the channel index is out of range.
    pub fn push(&mut self, req: Request) {
        let ch = req.addr.channel as usize;
        assert!(ch < self.channels.len(), "channel {ch} out of range");
        self.channels[ch].push(req);
    }

    /// Total requests still queued across channels.
    pub fn pending(&self) -> usize {
        self.channels.iter().map(|c| c.pending()).sum()
    }

    /// Schedule every queued request to completion.
    pub fn run(&mut self) -> SimResult {
        let mut stats = DramStats::default();
        for ch in &mut self.channels {
            let s = ch.run();
            stats.merge(&s);
        }
        let elapsed_ns = self.spec.cycles_to_ns(stats.finish_cycle);
        let bytes = stats.bytes(self.spec.topology.transfer_bytes);
        let bandwidth = if elapsed_ns > 0.0 { bytes as f64 / (elapsed_ns * 1e-9) } else { 0.0 };
        SimResult { stats, elapsed_ns, bandwidth_bytes_per_sec: bandwidth }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::DramAddress;

    #[test]
    fn channels_run_concurrently() {
        let spec = DramSpec::lpddr5_6400(32, 512 << 20); // 2 channels
        let mut sys = DramSystem::new(&spec);
        let n = 256;
        for c in 0..2u64 {
            for i in 0..n {
                let addr = DramAddress {
                    channel: c,
                    rank: 0,
                    bank: 0,
                    row: i / spec.topology.columns(),
                    column: i % spec.topology.columns(),
                };
                sys.push(Request::read(addr));
            }
        }
        let two_ch = sys.run();

        let mut sys1 = DramSystem::new(&spec);
        for i in 0..n {
            let addr = DramAddress {
                channel: 0,
                rank: 0,
                bank: 0,
                row: i / spec.topology.columns(),
                column: i % spec.topology.columns(),
            };
            sys1.push(Request::read(addr));
        }
        let one_ch = sys1.run();

        // Twice the data over two channels should take (almost) the same
        // time as half the data over one.
        assert!((two_ch.elapsed_ns - one_ch.elapsed_ns).abs() / one_ch.elapsed_ns < 0.05);
        assert!(two_ch.bandwidth_bytes_per_sec > 1.9 * one_ch.bandwidth_bytes_per_sec);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_channel() {
        let spec = DramSpec::lpddr5_6400(16, 256 << 20);
        let mut sys = DramSystem::new(&spec);
        sys.push(Request::read(DramAddress { channel: 5, rank: 0, bank: 0, row: 0, column: 0 }));
    }

    #[test]
    fn system_logging_covers_all_channels() {
        let spec = DramSpec::lpddr5_6400(32, 512 << 20); // 2 channels
        let mut sys = DramSystem::new(&spec);
        sys.enable_logging();
        for c in 0..2u64 {
            sys.push(Request::read(DramAddress {
                channel: c,
                rank: 0,
                bank: 0,
                row: 0,
                column: 0,
            }));
        }
        sys.run();
        let logs = sys.logs();
        assert_eq!(logs.len(), 2);
        for log in logs {
            // ACT + RD per channel.
            assert_eq!(log.len(), 2);
        }
    }

    #[test]
    fn empty_run_is_zero() {
        let spec = DramSpec::lpddr5_6400(16, 256 << 20);
        let mut sys = DramSystem::new(&spec);
        let r = sys.run();
        assert_eq!(r.stats.reads, 0);
        assert_eq!(r.elapsed_ns, 0.0);
        assert_eq!(sys.pending(), 0);
    }
}
