//! Multi-channel DRAM backend: distributes decoded requests to per-channel
//! FR-FCFS schedulers and aggregates statistics.

use std::collections::BTreeMap;
use std::sync::Arc;

use facil_telemetry::{pool, ArgValue, TraceSink, TrackId};

use crate::channel::{ChannelSim, SchedConfig};
use crate::command::{CommandKind, Request};
use crate::spec::DramSpec;
use crate::stats::{DramStats, SimResult};

/// Multi-channel DRAM memory system.
///
/// Channels are independent in LPDDR5; each channel's request sub-stream is
/// scheduled in isolation and the elapsed time of the whole stream is the
/// maximum over channels. [`DramSystem::run`] schedules the channels on the
/// [`pool`] worker threads (`FACIL_THREADS`), merging per-channel stats in
/// channel index order so the result is bit-identical to a serial run.
#[derive(Debug)]
pub struct DramSystem {
    spec: Arc<DramSpec>,
    channels: Vec<ChannelSim>,
    cfg: SchedConfig,
}

impl DramSystem {
    /// Create a backend for `spec` with default scheduler parameters (the
    /// engine honors `FACIL_DRAM_ENGINE`, see
    /// [`crate::engine::EngineKind::default_kind`]). The spec is stored
    /// once behind an [`Arc`] and shared by every channel scheduler.
    pub fn new(spec: &DramSpec) -> Self {
        Self::with_config(spec, SchedConfig::default())
    }

    /// Create a backend for `spec` with explicit scheduler parameters —
    /// in particular an explicit [`crate::engine::EngineKind`], which is
    /// how the perf harness pits the engines against each other on
    /// identical streams.
    pub fn with_config(spec: &DramSpec, cfg: SchedConfig) -> Self {
        let spec = Arc::new(spec.clone());
        let channels = (0..spec.topology.channels)
            .map(|_| ChannelSim::from_shared(Arc::clone(&spec), cfg))
            .collect();
        DramSystem { spec, channels, cfg }
    }

    /// Specification this system was built from.
    pub fn spec(&self) -> &DramSpec {
        &self.spec
    }

    /// Scheduler parameters every channel runs with.
    pub fn config(&self) -> SchedConfig {
        self.cfg
    }

    /// Enable command logging on every channel (see
    /// [`crate::verifylog`]).
    pub fn enable_logging(&mut self) {
        for ch in &mut self.channels {
            ch.enable_logging();
        }
    }

    /// Per-channel command logs, if logging was enabled.
    pub fn logs(&self) -> Vec<&[crate::verifylog::LoggedCommand]> {
        self.channels.iter().filter_map(|c| c.log()).collect()
    }

    /// Enqueue a decoded request on its target channel.
    ///
    /// # Panics
    ///
    /// Panics if the channel index is out of range.
    pub fn push(&mut self, req: Request) {
        let ch = req.addr.channel as usize;
        assert!(ch < self.channels.len(), "channel {ch} out of range");
        self.channels[ch].push(req);
    }

    /// Total requests still queued across channels.
    pub fn pending(&self) -> usize {
        self.channels.iter().map(|c| c.pending()).sum()
    }

    /// Convert the captured command logs into trace spans on `sink`, one
    /// track per bank (`ch{c}/r{r}/b{b}`) plus one refresh track per rank,
    /// all under the `dram` process group.
    ///
    /// Requires [`DramSystem::enable_logging`] before [`DramSystem::run`];
    /// without logs (or with a disabled sink) this is a no-op. Spans are
    /// placed at the *data/occupancy* phase each command implies: ACT
    /// covers tRCD, RD/WR cover their burst after CL/CWL, PRE covers tRP,
    /// and REFab covers tRFCab.
    pub fn export_trace<S: TraceSink>(&self, sink: &mut S) {
        if !sink.enabled() {
            return;
        }
        let t = &self.spec.timing;
        for (c, ch) in self.channels.iter().enumerate() {
            let Some(log) = ch.log() else { continue };
            let mut bank_tracks: BTreeMap<(u64, u64), TrackId> = BTreeMap::new();
            let mut refresh_tracks: BTreeMap<u64, TrackId> = BTreeMap::new();
            for cmd in log {
                let ns = |cycles: u64| self.spec.cycles_to_ns(cycles);
                match cmd.kind {
                    CommandKind::RefAb => {
                        let track = *refresh_tracks.entry(cmd.rank).or_insert_with(|| {
                            sink.track("dram", &format!("ch{c}/r{}/refresh", cmd.rank))
                        });
                        sink.complete(track, "REFab", ns(cmd.cycle), ns(t.rfc_ab), &[]);
                    }
                    kind => {
                        let track = *bank_tracks.entry((cmd.rank, cmd.bank)).or_insert_with(|| {
                            sink.track("dram", &format!("ch{c}/r{}/b{}", cmd.rank, cmd.bank))
                        });
                        let (name, start, dur, arg_key) = match kind {
                            CommandKind::Act => ("ACT", cmd.cycle, t.rcd, "row"),
                            CommandKind::Rd => ("RD", cmd.cycle + t.cl, t.burst_cycles, "col"),
                            CommandKind::Wr => ("WR", cmd.cycle + t.cwl, t.burst_cycles, "col"),
                            CommandKind::Pre => ("PRE", cmd.cycle, t.rp, "bank"),
                            CommandKind::RefAb => unreachable!("handled above"),
                        };
                        let arg_val = if kind == CommandKind::Pre { cmd.bank } else { cmd.arg };
                        sink.complete(
                            track,
                            name,
                            ns(start),
                            ns(dur),
                            &[(arg_key, ArgValue::U64(arg_val))],
                        );
                    }
                }
            }
        }
    }

    /// Schedule every queued request to completion, running channels on the
    /// configured [`pool::parallelism`] worker count.
    pub fn run(&mut self) -> SimResult {
        self.run_with_threads(pool::parallelism())
    }

    /// [`DramSystem::run`] with an explicit worker count (`1` = serial).
    ///
    /// Channels are independent, so any worker count produces the same
    /// [`SimResult`]: per-channel stats are merged in channel index order
    /// after all channels finish.
    ///
    /// Nesting-safe: when reached from inside an already-parallel region
    /// (e.g. a fleet/cluster tick advancing devices on the pool workers,
    /// one of which lazily profiles a relayout through `DramSystem`), the
    /// calling worker runs the channels inline rather than oversubscribing
    /// or deadlocking the executor — with, again, the same `SimResult`.
    pub fn run_with_threads(&mut self, workers: usize) -> SimResult {
        let per_channel = pool::par_map_mut_with(workers, &mut self.channels, ChannelSim::run);
        let mut stats = DramStats::default();
        for s in &per_channel {
            stats.merge(s);
        }
        let elapsed_ns = self.spec.cycles_to_ns(stats.finish_cycle);
        let bytes = stats.bytes(self.spec.topology.transfer_bytes);
        let bandwidth = if elapsed_ns > 0.0 { bytes as f64 / (elapsed_ns * 1e-9) } else { 0.0 };
        SimResult { stats, elapsed_ns, bandwidth_bytes_per_sec: bandwidth }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::DramAddress;

    #[test]
    fn channels_run_concurrently() {
        let spec = DramSpec::lpddr5_6400(32, 512 << 20); // 2 channels
        let mut sys = DramSystem::new(&spec);
        let n = 256;
        for c in 0..2u64 {
            for i in 0..n {
                let addr = DramAddress {
                    channel: c,
                    rank: 0,
                    bank: 0,
                    row: i / spec.topology.columns(),
                    column: i % spec.topology.columns(),
                };
                sys.push(Request::read(addr));
            }
        }
        let two_ch = sys.run();

        let mut sys1 = DramSystem::new(&spec);
        for i in 0..n {
            let addr = DramAddress {
                channel: 0,
                rank: 0,
                bank: 0,
                row: i / spec.topology.columns(),
                column: i % spec.topology.columns(),
            };
            sys1.push(Request::read(addr));
        }
        let one_ch = sys1.run();

        // Twice the data over two channels should take (almost) the same
        // time as half the data over one.
        assert!((two_ch.elapsed_ns - one_ch.elapsed_ns).abs() / one_ch.elapsed_ns < 0.05);
        assert!(two_ch.bandwidth_bytes_per_sec > 1.9 * one_ch.bandwidth_bytes_per_sec);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_channel() {
        let spec = DramSpec::lpddr5_6400(16, 256 << 20);
        let mut sys = DramSystem::new(&spec);
        sys.push(Request::read(DramAddress { channel: 5, rank: 0, bank: 0, row: 0, column: 0 }));
    }

    #[test]
    fn system_logging_covers_all_channels() {
        let spec = DramSpec::lpddr5_6400(32, 512 << 20); // 2 channels
        let mut sys = DramSystem::new(&spec);
        sys.enable_logging();
        for c in 0..2u64 {
            sys.push(Request::read(DramAddress {
                channel: c,
                rank: 0,
                bank: 0,
                row: 0,
                column: 0,
            }));
        }
        sys.run();
        let logs = sys.logs();
        assert_eq!(logs.len(), 2);
        for log in logs {
            // ACT + RD per channel.
            assert_eq!(log.len(), 2);
        }
    }

    #[test]
    fn export_trace_lays_out_banks_as_tracks() {
        use facil_telemetry::RingSink;

        let spec = DramSpec::lpddr5_6400(32, 512 << 20); // 2 channels
        let mut sys = DramSystem::new(&spec);
        sys.enable_logging();
        for c in 0..2u64 {
            for col in 0..2u64 {
                sys.push(Request::read(DramAddress {
                    channel: c,
                    rank: 0,
                    bank: c, // distinct banks so each channel owns a track
                    row: 0,
                    column: col,
                }));
            }
        }
        sys.run();
        let mut sink = RingSink::new(64);
        sys.export_trace(&mut sink);
        // Per channel: 1 ACT + 2 RD.
        assert_eq!(sink.len(), 6);
        let json = sink.to_chrome_json();
        assert!(json.contains(r#""name":"ch0/r0/b0""#));
        assert!(json.contains(r#""name":"ch1/r0/b1""#));
        assert!(json.contains(r#""name":"ACT""#));
        assert!(json.contains(r#""name":"RD""#));
        // RD data phase starts CL after the issue cycle, after the ACT span.
        let act_ns = spec.cycles_to_ns(spec.timing.rcd);
        assert!(sink.events().any(|e| e.name == "RD" && e.ts_ns >= act_ns));
    }

    #[test]
    fn export_trace_without_logging_is_empty() {
        use facil_telemetry::{NullSink, RingSink};

        let spec = DramSpec::lpddr5_6400(16, 256 << 20);
        let mut sys = DramSystem::new(&spec);
        sys.push(Request::read(DramAddress { channel: 0, rank: 0, bank: 0, row: 0, column: 0 }));
        sys.run();
        let mut sink = RingSink::new(16);
        sys.export_trace(&mut sink); // logging never enabled
        assert!(sink.is_empty());
        sys.export_trace(&mut NullSink); // disabled sink: no-op either way
    }

    // The telemetry contract of the engine split: per-bank and refresh
    // trace tracks are byte-identical whether the engine stepped through or
    // jumped over a long arrival gap (the gap spans several tREFI periods,
    // so refresh spans must land on their deadlines, not on visit times).
    #[test]
    fn trace_tracks_survive_time_jumps() {
        use crate::channel::SchedConfig;
        use crate::engine::EngineKind;
        use facil_telemetry::RingSink;

        let spec = DramSpec::lpddr5_6400(16, 256 << 20); // 1 channel
        let gap = 4 * spec.timing.refi + 17;
        let json = |engine: EngineKind| {
            let cfg = SchedConfig { engine, ..SchedConfig::default() };
            let mut sys = DramSystem::with_config(&spec, cfg);
            sys.enable_logging();
            for (i, at) in [0, 0, gap, gap + 3].into_iter().enumerate() {
                sys.push(
                    Request::read(DramAddress {
                        channel: 0,
                        rank: 0,
                        bank: i as u64 % 2,
                        row: i as u64,
                        column: 0,
                    })
                    .at(at),
                );
            }
            sys.run_with_threads(1);
            let mut sink = RingSink::new(256);
            sys.export_trace(&mut sink);
            sink.to_chrome_json()
        };
        let stepped = json(EngineKind::Stepped);
        let event = json(EngineKind::Event);
        assert!(stepped.contains(r#""name":"REFab""#), "gap must cross refresh deadlines");
        assert_eq!(stepped, event);
    }

    #[test]
    fn with_config_selects_engine_and_reports_it() {
        use crate::channel::SchedConfig;
        use crate::engine::EngineKind;

        let spec = DramSpec::lpddr5_6400(16, 256 << 20);
        let cfg = SchedConfig { engine: EngineKind::Stepped, ..SchedConfig::default() };
        let sys = DramSystem::with_config(&spec, cfg);
        assert_eq!(sys.config().engine, EngineKind::Stepped);
        assert_eq!(DramSystem::new(&spec).config().window, SchedConfig::default().window);
    }

    #[test]
    fn empty_run_is_zero() {
        let spec = DramSpec::lpddr5_6400(16, 256 << 20);
        let mut sys = DramSystem::new(&spec);
        let r = sys.run();
        assert_eq!(r.stats.reads, 0);
        assert_eq!(r.elapsed_ns, 0.0);
        assert_eq!(sys.pending(), 0);
    }
}
