//! DRAM device specifications: topology, clocking and timing parameters.
//!
//! The FACIL paper evaluates LPDDR5-6400 (Jetson AGX Orin, MacBook Pro,
//! iPhone 15 Pro) and LPDDR5X-7467 (IdeaPad Slim 5) memory systems, with
//! timing parameters taken from the JEDEC JESD209-5 standard. This module
//! provides *JEDEC-shaped* presets: the parameter set and their relative
//! magnitudes follow the standard, with nanosecond values rounded to widely
//! published datasheet figures.

use serde::{Deserialize, Serialize};

use crate::addr::Topology;

/// DRAM device generation modelled by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DramKind {
    /// LPDDR5 (e.g. 6400 MT/s as used by Jetson/MacBook/iPhone in the paper).
    Lpddr5,
    /// LPDDR5X (e.g. 7467 MT/s as used by the IdeaPad in the paper).
    Lpddr5x,
}

impl std::fmt::Display for DramKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DramKind::Lpddr5 => write!(f, "LPDDR5"),
            DramKind::Lpddr5x => write!(f, "LPDDR5X"),
        }
    }
}

/// Timing parameters in *controller clock cycles*.
///
/// The controller clock is defined as `data_rate / 8`: one cycle moves
/// 8 beats on the DQ bus, so a BL16 burst (one 32-byte transfer on a 16-bit
/// LPDDR5 channel) occupies exactly [`Timing::burst_cycles`] = 2 cycles, and
/// back-to-back column commands at `tCCD = 2` sustain the full pin bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timing {
    /// Controller clock period in picoseconds.
    pub tck_ps: u64,
    /// ACT to internal read/write delay (tRCD).
    pub rcd: u64,
    /// Per-bank precharge latency (tRPpb).
    pub rp: u64,
    /// Minimum row open time, ACT to PRE (tRAS).
    pub ras: u64,
    /// ACT to ACT same bank (tRC = tRAS + tRP).
    pub rc: u64,
    /// Read latency, RD command to first data beat (RL/CL).
    pub cl: u64,
    /// Write latency, WR command to first data beat (WL/CWL).
    pub cwl: u64,
    /// Data burst duration on the DQ bus (BL16 on a x16 channel = 32 B).
    pub burst_cycles: u64,
    /// Column-to-column, same bank group (tCCD_L).
    pub ccd_l: u64,
    /// Column-to-column, different bank group (tCCD_S).
    pub ccd_s: u64,
    /// ACT-to-ACT, same bank group (tRRD_L).
    pub rrd_l: u64,
    /// ACT-to-ACT, different bank group (tRRD_S).
    pub rrd_s: u64,
    /// Four-activate window (tFAW).
    pub faw: u64,
    /// Write recovery time, end of write data to PRE (tWR).
    pub wr: u64,
    /// Read-to-precharge (tRTP).
    pub rtp: u64,
    /// Write-to-read turnaround, end of write data to RD (tWTR).
    pub wtr: u64,
    /// Read-to-write turnaround bubble on the data bus.
    pub rtw: u64,
    /// Average refresh interval (tREFI); 0 disables refresh.
    pub refi: u64,
    /// All-bank refresh cycle time (tRFCab).
    pub rfc_ab: u64,
}

impl Timing {
    /// Construct a timing set from nanosecond values at the given controller
    /// clock frequency. Cycle counts are rounded up (conservative, as real
    /// controllers do).
    #[allow(clippy::too_many_arguments)]
    fn from_ns(clock_mhz: u64, ns: TimingNs) -> Self {
        let tck_ps = 1_000_000 / clock_mhz; // ps per cycle
        let cyc = |t_ns: f64| -> u64 { ((t_ns * 1000.0) / tck_ps as f64).ceil() as u64 };
        Timing {
            tck_ps,
            rcd: cyc(ns.rcd),
            rp: cyc(ns.rp),
            ras: cyc(ns.ras),
            rc: cyc(ns.ras) + cyc(ns.rp),
            cl: cyc(ns.cl),
            cwl: cyc(ns.cwl),
            burst_cycles: 2,
            ccd_l: 2,
            ccd_s: 2,
            rrd_l: cyc(ns.rrd),
            rrd_s: cyc(ns.rrd),
            faw: cyc(ns.faw),
            wr: cyc(ns.wr),
            rtp: cyc(ns.rtp),
            wtr: cyc(ns.wtr),
            rtw: 2,
            refi: cyc(ns.refi),
            rfc_ab: cyc(ns.rfc),
        }
    }
}

/// Helper bundle of nanosecond timing inputs.
struct TimingNs {
    rcd: f64,
    rp: f64,
    ras: f64,
    cl: f64,
    cwl: f64,
    rrd: f64,
    faw: f64,
    wr: f64,
    rtp: f64,
    wtr: f64,
    refi: f64,
    rfc: f64,
}

impl TimingNs {
    /// JEDEC JESD209-5-shaped LPDDR5/5X core timing in nanoseconds.
    /// LPDDR5 and LPDDR5X share analog core timings; the speed grade changes
    /// the clock, not the nanosecond values.
    fn lpddr5_core() -> Self {
        TimingNs {
            rcd: 18.0,
            rp: 18.0,
            ras: 42.0,
            cl: 17.0,
            cwl: 9.0,
            rrd: 7.5,
            faw: 20.0,
            wr: 18.0,
            rtp: 7.5,
            wtr: 10.0,
            refi: 3906.0,
            rfc: 210.0,
        }
    }
}

/// A complete DRAM memory-system specification: device kind, clocking,
/// topology and timing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramSpec {
    /// Device generation.
    pub kind: DramKind,
    /// Data rate per pin in MT/s (e.g. 6400).
    pub data_rate_mbps: u64,
    /// Total DQ bus width in bits across all channels (e.g. 256 for Jetson).
    pub bus_width_bits: u64,
    /// Geometry of the memory system.
    pub topology: Topology,
    /// Timing parameters in controller clock cycles.
    pub timing: Timing,
}

impl DramSpec {
    /// Build a spec from data rate, total bus width and capacity, assuming
    /// x16 LPDDR5 channels, 2 ranks per channel and 16 banks per rank
    /// (4 bank groups x 4 banks), which is the configuration assumed by the
    /// FACIL paper (Section VI-A).
    ///
    /// # Panics
    ///
    /// Panics if `bus_width_bits` is not a multiple of 16 or the resulting
    /// per-bank capacity is not a power-of-two multiple of the row size.
    pub fn build(
        kind: DramKind,
        data_rate_mbps: u64,
        bus_width_bits: u64,
        capacity_bytes: u64,
    ) -> Self {
        assert!(bus_width_bits.is_multiple_of(16), "LPDDR5 channels are 16 bits wide");
        let channels = bus_width_bits / 16;
        let ranks = 2;
        let bank_groups = 4;
        let banks_per_group = 4;
        let row_bytes = 2048; // 2 KB row buffer per bank (paper Section II-C)
        let transfer_bytes = 32; // BL16 x 16 bits
        let per_bank = capacity_bytes / (channels * ranks * bank_groups * banks_per_group);
        assert!(
            per_bank.is_multiple_of(row_bytes),
            "bank capacity must be a multiple of the row size"
        );
        let rows = per_bank / row_bytes;
        assert!(rows.is_power_of_two(), "rows per bank must be a power of two (got {rows})");
        let topology = Topology::new(
            channels,
            ranks,
            bank_groups,
            banks_per_group,
            rows,
            row_bytes,
            transfer_bytes,
        );
        let clock_mhz = data_rate_mbps / 8;
        let timing = Timing::from_ns(clock_mhz, TimingNs::lpddr5_core());
        DramSpec { kind, data_rate_mbps, bus_width_bits, topology, timing }
    }

    /// LPDDR5-6400 with the given total bus width and capacity
    /// (Jetson: 256-bit/64 GB, MacBook: 512-bit/64 GB, iPhone: 64-bit/8 GB).
    pub fn lpddr5_6400(bus_width_bits: u64, capacity_bytes: u64) -> Self {
        Self::build(DramKind::Lpddr5, 6400, bus_width_bits, capacity_bytes)
    }

    /// LPDDR5X-7467 with the given total bus width and capacity
    /// (IdeaPad: 64-bit/32 GB).
    pub fn lpddr5x_7467(bus_width_bits: u64, capacity_bytes: u64) -> Self {
        Self::build(DramKind::Lpddr5x, 7467, bus_width_bits, capacity_bytes)
    }

    /// Controller clock frequency in MHz.
    pub fn clock_mhz(&self) -> u64 {
        self.data_rate_mbps / 8
    }

    /// Theoretical peak bandwidth of the whole memory system in bytes/second.
    pub fn peak_bandwidth_bytes_per_sec(&self) -> f64 {
        self.data_rate_mbps as f64 * 1.0e6 * (self.bus_width_bits as f64 / 8.0)
    }

    /// Peak bandwidth of a single channel in bytes/second.
    pub fn channel_bandwidth_bytes_per_sec(&self) -> f64 {
        self.peak_bandwidth_bytes_per_sec() / self.topology.channels as f64
    }

    /// Convert a cycle count at the controller clock into nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * self.timing.tck_ps as f64 / 1000.0
    }

    /// Convert nanoseconds into controller clock cycles (rounded up).
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns * 1000.0 / self.timing.tck_ps as f64).ceil() as u64
    }

    /// Total capacity of the memory system in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.topology.capacity_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jetson_spec_matches_table2() {
        let spec = DramSpec::lpddr5_6400(256, 64 << 30);
        assert_eq!(spec.topology.channels, 16);
        assert_eq!(spec.topology.ranks, 2);
        assert_eq!(spec.topology.banks(), 16);
        // Peak BW: 6400 MT/s * 256 bits / 8 = 204.8 GB/s.
        let gbs = spec.peak_bandwidth_bytes_per_sec() / 1e9;
        assert!((gbs - 204.8).abs() < 1e-6, "got {gbs}");
    }

    #[test]
    fn ideapad_spec_matches_table2() {
        let spec = DramSpec::lpddr5x_7467(64, 32 << 30);
        assert_eq!(spec.topology.channels, 4);
        let gbs = spec.peak_bandwidth_bytes_per_sec() / 1e9;
        assert!((gbs - 59.736).abs() < 0.1, "got {gbs}");
    }

    #[test]
    fn burst_sustains_pin_bandwidth() {
        let spec = DramSpec::lpddr5_6400(64, 8 << 30);
        // One 32-byte transfer every tCCD(=burst) cycles must equal the
        // channel pin bandwidth.
        let per_cycle_ns = spec.timing.tck_ps as f64 / 1000.0;
        let bw = 32.0 / (spec.timing.ccd_l as f64 * per_cycle_ns) * 1e9;
        assert!((bw - spec.channel_bandwidth_bytes_per_sec()).abs() / bw < 1e-9);
    }

    #[test]
    fn timing_cycles_are_sane() {
        let spec = DramSpec::lpddr5_6400(256, 64 << 30);
        let t = &spec.timing;
        assert!(t.rcd > 0 && t.rp > 0 && t.ras > t.rcd);
        assert_eq!(t.rc, t.ras + t.rp);
        assert!(t.faw >= t.rrd_s, "FAW must cover at least one tRRD");
        // 800 MHz controller clock for LPDDR5-6400.
        assert_eq!(spec.clock_mhz(), 800);
        assert_eq!(t.tck_ps, 1250);
    }

    #[test]
    fn rows_per_bank_power_of_two() {
        for (bus, cap) in [(256u64, 64u64 << 30), (512, 64 << 30), (64, 32 << 30), (64, 8 << 30)] {
            let spec = DramSpec::lpddr5_6400(bus, cap);
            assert!(spec.topology.rows.is_power_of_two());
            assert_eq!(spec.capacity_bytes(), cap);
        }
    }

    #[test]
    fn cycles_ns_roundtrip() {
        let spec = DramSpec::lpddr5_6400(64, 8 << 30);
        let ns = spec.cycles_to_ns(1000);
        assert_eq!(spec.ns_to_cycles(ns), 1000);
    }

    #[test]
    fn display_kind() {
        assert_eq!(DramKind::Lpddr5.to_string(), "LPDDR5");
        assert_eq!(DramKind::Lpddr5x.to_string(), "LPDDR5X");
    }
}
