//! Cycle-level simulation of *all-bank* PIM command streams.
//!
//! Near-bank PIMs execute `ACT-AB → MAC-AB… → PRE-AB` sequences in which
//! every bank of a rank acts in lock-step (paper Section II-C), so a rank
//! behaves like one virtual bank with 16x the data width. This module
//! simulates those streams at command granularity on the shared per-channel
//! command bus — global-buffer loads, activates, MACs, precharges, rank
//! interleaving — and is used to cross-validate the analytic
//! `facil-pim` timing engine (see its `simulated_vs_analytic` test).

use serde::{Deserialize, Serialize};

use crate::spec::DramSpec;

/// One rank's PIM workload: a number of weight DRAM rows to stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PimStream {
    /// Rank executing the stream.
    pub rank: u64,
    /// Weight DRAM rows to process (each = ACT-AB + MACs + PRE-AB).
    pub rows: u64,
    /// Global-buffer load commands required before each row's MACs.
    pub gb_cmds_per_row: u64,
    /// MAC-AB commands per row (= column transfers per row).
    pub macs_per_row: u64,
    /// MAC issue interval in cycles.
    pub mac_interval: u64,
    /// Whether the next row's GB load may overlap the current row's MACs.
    pub double_buffer: bool,
}

/// Result of simulating a set of streams on one channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllBankResult {
    /// Cycle at which the last command issued.
    pub cycles: u64,
    /// Total MAC-AB commands issued.
    pub macs: u64,
    /// Total commands issued on the bus (GB + ACT + MAC + PRE).
    pub commands: u64,
    /// Bus occupancy: commands / cycles.
    pub bus_utilization: f64,
}

/// Kind of an all-bank PIM command as it appears on the channel bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllBankCommandKind {
    /// Global-buffer load (broadcast of one input-vector transfer).
    GbLoad,
    /// ACT-AB: activate the same row in every bank of the rank.
    ActAb,
    /// MAC-AB: multiply-accumulate one column transfer in every bank.
    MacAb,
    /// PRE-AB: precharge all banks of the rank.
    PreAb,
}

/// One logged all-bank command. [`run_allbank_logged`] emits these so that
/// functional replay (`facil-fidelity`) and JEDEC-style legality checking
/// ([`crate::verify_allbank_log`]) run off the very same stream the timing
/// model executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllBankCommand {
    /// Issue cycle.
    pub cycle: u64,
    /// Rank the command targets.
    pub rank: u64,
    /// Command kind.
    pub kind: AllBankCommandKind,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Loading the global buffer for the upcoming row.
    GbLoad { remaining: u64 },
    /// Waiting to issue ACT-AB (tRC/tRP from the previous row).
    NeedAct,
    /// Issuing MACs.
    Mac { remaining: u64, prefetch_remaining: u64 },
    /// Waiting to issue PRE-AB (tRAS / tRTP).
    NeedPre,
    /// All rows done.
    Done,
}

#[derive(Debug)]
struct RankState {
    stream: PimStream,
    rows_left: u64,
    phase: Phase,
    /// Earliest cycle the pending command may issue.
    ready_at: u64,
    last_act: u64,
    next_mac: u64,
    /// GB loads for the next row still outstanding when the current row's
    /// MACs finished (prefetch that did not fit in the free bus slots).
    pending_gb: u64,
}

/// Simulate `streams` (at most one per rank) on one channel of `spec`.
///
/// # Panics
///
/// Panics if two streams share a rank or a rank index is out of range.
pub fn run_allbank(spec: &DramSpec, streams: &[PimStream]) -> AllBankResult {
    run_allbank_impl(spec, streams, None)
}

/// Like [`run_allbank`], but also returns the full command log in issue
/// order, one entry per bus command.
///
/// # Panics
///
/// Panics if two streams share a rank or a rank index is out of range.
pub fn run_allbank_logged(
    spec: &DramSpec,
    streams: &[PimStream],
) -> (AllBankResult, Vec<AllBankCommand>) {
    let mut log = Vec::new();
    let result = run_allbank_impl(spec, streams, Some(&mut log));
    (result, log)
}

fn run_allbank_impl(
    spec: &DramSpec,
    streams: &[PimStream],
    mut log: Option<&mut Vec<AllBankCommand>>,
) -> AllBankResult {
    let tm = &spec.timing;
    let mut seen = std::collections::HashSet::new();
    for s in streams {
        assert!(s.rank < spec.topology.ranks, "rank {} out of range", s.rank);
        assert!(seen.insert(s.rank), "one stream per rank");
    }
    let mut ranks: Vec<RankState> = streams
        .iter()
        .map(|s| RankState {
            stream: *s,
            rows_left: s.rows,
            phase: if s.rows == 0 {
                Phase::Done
            } else {
                Phase::GbLoad { remaining: s.gb_cmds_per_row }
            },
            ready_at: 0,
            last_act: 0,
            next_mac: 0,
            pending_gb: 0,
        })
        .collect();

    let mut now = 0u64;
    let mut macs = 0u64;
    let mut commands = 0u64;
    let mut last_cmd_cycle = 0u64;
    let mut rr = 0usize;
    while ranks.iter().any(|r| r.phase != Phase::Done) {
        // Find an issuable command this cycle, rotating priority.
        let n = ranks.len();
        let mut issued = false;
        for k in 0..n {
            let i = (rr + k) % n;
            let r = &mut ranks[i];
            let s = r.stream;
            let mut issued_kind: Option<AllBankCommandKind> = None;
            match r.phase {
                Phase::Done => {}
                Phase::GbLoad { remaining } if r.ready_at <= now => {
                    let left = remaining - 1;
                    r.ready_at = now + tm.ccd_l;
                    r.phase = if left == 0 {
                        // Row's input staged; ACT once tRC/tRP allow.
                        Phase::NeedAct
                    } else {
                        Phase::GbLoad { remaining: left }
                    };
                    commands += 1;
                    issued = true;
                    issued_kind = Some(AllBankCommandKind::GbLoad);
                }
                Phase::NeedAct if r.ready_at <= now && now >= r.last_act.saturating_add(0) => {
                    // tRC from the previous ACT of this rank.
                    let rc_ok = r.last_act == 0 || now >= r.last_act + tm.rc;
                    if rc_ok {
                        r.last_act = now;
                        r.next_mac = now + tm.rcd;
                        let prefetch =
                            if s.double_buffer && r.rows_left > 1 { s.gb_cmds_per_row } else { 0 };
                        r.phase =
                            Phase::Mac { remaining: s.macs_per_row, prefetch_remaining: prefetch };
                        commands += 1;
                        issued = true;
                        issued_kind = Some(AllBankCommandKind::ActAb);
                    }
                }
                Phase::Mac { remaining, prefetch_remaining }
                    if remaining > 0 && r.next_mac <= now =>
                {
                    r.next_mac = now + s.mac_interval;
                    macs += 1;
                    commands += 1;
                    let left = remaining - 1;
                    if left == 0 {
                        r.ready_at = now + tm.rtp;
                        // Prefetch that did not fit must finish before the
                        // next row's MACs.
                        r.pending_gb = prefetch_remaining;
                        r.phase = Phase::NeedPre;
                    } else {
                        r.phase = Phase::Mac { remaining: left, prefetch_remaining };
                    }
                    issued = true;
                    issued_kind = Some(AllBankCommandKind::MacAb);
                }
                Phase::Mac { remaining, prefetch_remaining }
                    if prefetch_remaining > 0 && r.next_mac > now =>
                {
                    // MAC pipeline busy: use the free slot to prefetch the
                    // next row's GB content.
                    r.phase = Phase::Mac { remaining, prefetch_remaining: prefetch_remaining - 1 };
                    commands += 1;
                    issued = true;
                    issued_kind = Some(AllBankCommandKind::GbLoad);
                }
                Phase::NeedPre if r.ready_at <= now && now >= r.last_act + tm.ras => {
                    commands += 1;
                    r.rows_left -= 1;
                    if r.rows_left == 0 {
                        r.phase = Phase::Done;
                    } else {
                        // tRP before the next ACT.
                        r.ready_at = now + tm.rp;
                        // Continue from whatever prefetch achieved.
                        let outstanding =
                            if s.double_buffer { r.pending_gb } else { s.gb_cmds_per_row };
                        r.pending_gb = 0;
                        r.phase = if outstanding == 0 {
                            Phase::NeedAct
                        } else {
                            Phase::GbLoad { remaining: outstanding }
                        };
                    }
                    issued = true;
                    issued_kind = Some(AllBankCommandKind::PreAb);
                }
                _ => {}
            }
            if issued {
                if let (Some(l), Some(kind)) = (log.as_deref_mut(), issued_kind) {
                    l.push(AllBankCommand { cycle: now, rank: s.rank, kind });
                }
                last_cmd_cycle = now;
                rr = (i + 1) % n;
                break;
            }
        }
        now += 1;
        // Safety valve against livelock in case of a modelling bug.
        assert!(now < 1 << 32, "all-bank simulation failed to converge");
    }
    AllBankResult {
        cycles: last_cmd_cycle + 1,
        macs,
        commands,
        bus_utilization: commands as f64 / (last_cmd_cycle + 1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DramSpec {
        DramSpec::lpddr5_6400(16, 256 << 20) // single channel, 2 ranks
    }

    fn stream(rank: u64, rows: u64) -> PimStream {
        PimStream {
            rank,
            rows,
            gb_cmds_per_row: 64,
            macs_per_row: 64,
            mac_interval: 2,
            double_buffer: true,
        }
    }

    #[test]
    fn single_rank_row_cycle_cost() {
        let s = spec();
        let r = run_allbank(&s, &[stream(0, 8)]);
        assert_eq!(r.macs, 8 * 64);
        // Per row at steady state: max(gb load, rcd + macs + rtp + rp)
        // cycles-ish; sanity bounds.
        let tm = &s.timing;
        let per_row_min = 64 * tm.ccd_l;
        let per_row_max = tm.rcd + 64 * 2 + tm.rtp + tm.rp + 64 * tm.ccd_l + 8;
        assert!(r.cycles >= 8 * per_row_min, "{} < {}", r.cycles, 8 * per_row_min);
        assert!(r.cycles <= 8 * per_row_max, "{} > {}", r.cycles, 8 * per_row_max);
    }

    #[test]
    fn two_ranks_interleave_on_the_bus() {
        let s = spec();
        let one = run_allbank(&s, &[stream(0, 8)]);
        let two = run_allbank(&s, &[stream(0, 8), stream(1, 8)]);
        // Twice the work in much less than twice the time (bus slots
        // interleave), but not free.
        assert_eq!(two.macs, 2 * one.macs);
        assert!(two.cycles < 2 * one.cycles, "{} vs {}", two.cycles, one.cycles);
        assert!(two.cycles > one.cycles, "{} vs {}", two.cycles, one.cycles);
        assert!(two.bus_utilization > one.bus_utilization);
    }

    #[test]
    fn double_buffering_helps() {
        let s = spec();
        let mut no_db = stream(0, 16);
        no_db.double_buffer = false;
        let with_db = run_allbank(&s, &[stream(0, 16)]);
        let without = run_allbank(&s, &[no_db]);
        assert!(with_db.cycles < without.cycles, "{} vs {}", with_db.cycles, without.cycles);
    }

    #[test]
    fn empty_stream_is_zero_work() {
        let s = spec();
        let r = run_allbank(&s, &[stream(0, 0)]);
        assert_eq!(r.macs, 0);
    }

    #[test]
    #[should_panic(expected = "one stream per rank")]
    fn duplicate_rank_rejected() {
        run_allbank(&spec(), &[stream(0, 1), stream(0, 1)]);
    }

    #[test]
    fn logged_run_matches_unlogged() {
        let s = spec();
        let streams = [stream(0, 8), stream(1, 6)];
        let plain = run_allbank(&s, &streams);
        let (logged, log) = run_allbank_logged(&s, &streams);
        assert_eq!(plain, logged, "logging must not perturb the simulation");
        assert_eq!(log.len() as u64, logged.commands, "one log entry per bus command");
        assert_eq!(
            log.iter().filter(|c| c.kind == AllBankCommandKind::MacAb).count() as u64,
            logged.macs
        );
        assert!(log.windows(2).all(|w| w[0].cycle < w[1].cycle), "one command per cycle");
    }

    #[test]
    fn log_counts_per_rank_match_streams() {
        let s = spec();
        let streams = [stream(0, 4), stream(1, 3)];
        let (_, log) = run_allbank_logged(&s, &streams);
        for st in &streams {
            let count = |k: AllBankCommandKind| {
                log.iter().filter(|c| c.rank == st.rank && c.kind == k).count() as u64
            };
            assert_eq!(count(AllBankCommandKind::ActAb), st.rows);
            assert_eq!(count(AllBankCommandKind::PreAb), st.rows);
            assert_eq!(count(AllBankCommandKind::MacAb), st.rows * st.macs_per_row);
            assert_eq!(count(AllBankCommandKind::GbLoad), st.rows * st.gb_cmds_per_row);
        }
    }
}
