//! Simulation engines: *how* the channel clock advances between
//! scheduling decisions.
//!
//! [`crate::channel::ChannelCore`] defines *what* happens at a visited
//! cycle (the FR-FCFS decision procedure, refresh bookkeeping, stats); a
//! [`DramEngine`] decides *which* cycles get visited:
//!
//! * [`SteppedEngine`] — the cycle-stepped reference: visit every DRAM
//!   clock, attempt a decision, advance by one. Trivially correct, and
//!   exactly the semantics the scheduler had before the engine split —
//!   the old `ChannelSim::step()` loop extracted behind the trait. Cost is
//!   proportional to *elapsed DRAM time*, which is the scale ceiling on
//!   low-utilization serving traces (~10⁶ requests/day are mostly idle
//!   cycles).
//! * [`EventEngine`] — next-event simulation: keep the per-request
//!   next-actionable times reported by the decision procedure plus the
//!   per-rank tREFI deadlines in a binary-heap [`EventQueue`], and jump
//!   the clock directly to the earliest cycle at which the decision could
//!   possibly change. Cost is proportional to the *number of commands*,
//!   independent of idle time (the Ramulator 2.x design point).
//!
//! The two engines are bit-identical — same command log, same
//! [`crate::DramStats`] — because a jump from `t` to `target` only skips
//! cycles where the decision is provably the same `Blocked` it was at `t`:
//!
//! * candidate ready times (bank timing, tFAW expiry, bus occupancy and
//!   turnaround) only change when a command issues, and none can issue
//!   while blocked;
//! * no queued request arrives before `target` (arrivals are sorted, and
//!   the first not-yet-arrived window entry caps the jump);
//! * no tREFI deadline falls before `target` (refresh closes rows, which
//!   can create an *earlier* actionable activate, so deadlines cap the
//!   jump too — and refresh effects are deadline-derived, never
//!   visit-time-derived, see [`crate::channel::ChannelCore::service_refresh`]).
//!
//! Selection: [`crate::SchedConfig::engine`], defaulting to the
//! `FACIL_DRAM_ENGINE` environment variable (`stepped` or `event`), else
//! [`EngineKind::Event`]. The property test
//! `event_engine_is_bit_identical_to_stepped` holds the two together under
//! random traffic, both page policies, multi-channel parallel runs and
//! refresh-heavy timing.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::channel::{ChannelCore, Decision};

/// A strategy for driving a [`ChannelCore`] to completion.
///
/// Implementations must uphold the visiting contract documented on
/// [`ChannelCore`]: reclaim + service refresh before every decision, never
/// move the clock backwards, and never jump past a cycle at which the
/// decision could change (candidate ready, next window arrival, or tREFI
/// deadline).
pub trait DramEngine {
    /// Engine name for reports and diagnostics.
    fn name(&self) -> &'static str;

    /// Schedule every queued request of `core` to completion.
    fn drive(&self, core: &mut ChannelCore);
}

/// Which [`DramEngine`] a scheduler runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Cycle-stepped reference engine ([`SteppedEngine`]).
    Stepped,
    /// Next-event engine ([`EventEngine`], the default).
    Event,
}

impl EngineKind {
    /// Parse an engine name (`stepped`/`step`/`cycle` or `event`/`next-event`),
    /// case-insensitively.
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "stepped" | "step" | "cycle" | "cycle-stepped" => Some(EngineKind::Stepped),
            "event" | "next-event" | "next_event" => Some(EngineKind::Event),
            _ => None,
        }
    }

    /// The engine named by the `FACIL_DRAM_ENGINE` environment variable,
    /// if set to a recognized value.
    pub fn from_env() -> Option<EngineKind> {
        std::env::var("FACIL_DRAM_ENGINE").ok().as_deref().and_then(EngineKind::parse)
    }

    /// Default engine: `FACIL_DRAM_ENGINE` if set and recognized, else
    /// [`EngineKind::Event`]. Unrecognized values fall back to the event
    /// engine (results are identical either way; only wall-clock differs).
    pub fn default_kind() -> EngineKind {
        EngineKind::from_env().unwrap_or(EngineKind::Event)
    }

    /// The shared engine instance for this kind.
    pub fn engine(self) -> &'static dyn DramEngine {
        static STEPPED: SteppedEngine = SteppedEngine;
        static EVENT: EventEngine = EventEngine;
        match self {
            EngineKind::Stepped => &STEPPED,
            EngineKind::Event => &EVENT,
        }
    }

    /// Engine name (`"stepped"` or `"event"`).
    pub fn name(self) -> &'static str {
        self.engine().name()
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The cycle-stepped reference engine: visit every DRAM clock cycle.
///
/// This is the pre-engine-split scheduler semantics, kept as the obviously
/// correct oracle the event engine is property-tested against (the same
/// discipline as `parallel_run_is_bit_identical_to_serial`: a simple
/// serial reference holds an optimized implementation honest).
#[derive(Debug, Clone, Copy, Default)]
pub struct SteppedEngine;

impl DramEngine for SteppedEngine {
    fn name(&self) -> &'static str {
        "stepped"
    }

    fn drive(&self, core: &mut ChannelCore) {
        while core.pending() > 0 {
            core.reclaim();
            core.service_refresh();
            if let Decision::Blocked { .. } = core.decide() {
                core.tick();
            }
        }
    }
}

/// What a queued [`EventQueue`] entry is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A blocked command candidate becomes ready (bank timing, tFAW window
    /// expiry, data-bus drain or turnaround).
    CandidateReady = 0,
    /// The next queued request arrives at the channel.
    Arrival = 1,
    /// A rank reaches its tREFI deadline and must refresh.
    RefreshDue = 2,
}

impl EventKind {
    fn from_tag(tag: u8) -> EventKind {
        match tag {
            0 => EventKind::CandidateReady,
            1 => EventKind::Arrival,
            _ => EventKind::RefreshDue,
        }
    }
}

/// Min-heap of future wake-up cycles for the [`EventEngine`].
///
/// Entries are *hints*, not obligations: waking earlier than necessary is
/// harmless (the decision procedure simply reports `Blocked` again), so
/// stale entries — a candidate-ready time superseded by an issued command,
/// a refresh deadline already serviced — are discarded lazily when popped.
/// What matters for correctness is the converse invariant, upheld by the
/// drive loop: every cycle at which the pending decision could change has
/// an entry at or before it.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(u64, u8)>>,
    /// Last refresh deadline pushed, so the per-decision re-arm of the
    /// persistent refresh event does not flood the heap with duplicates.
    armed_refresh: Option<u64>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Number of queued (possibly stale) events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Queue a wake-up at `cycle`.
    pub fn push(&mut self, cycle: u64, kind: EventKind) {
        self.heap.push(Reverse((cycle, kind as u8)));
    }

    /// Arm (or re-arm) the refresh deadline event. Idempotent per
    /// deadline: re-arming the same cycle is a no-op.
    pub fn arm_refresh(&mut self, deadline: u64) {
        if self.armed_refresh != Some(deadline) {
            self.push(deadline, EventKind::RefreshDue);
            self.armed_refresh = Some(deadline);
        }
    }

    /// Pop the earliest event strictly after `now`, discarding stale
    /// entries at or before `now`.
    pub fn pop_after(&mut self, now: u64) -> Option<(u64, EventKind)> {
        while let Some(Reverse((cycle, tag))) = self.heap.pop() {
            if cycle > now {
                return Some((cycle, EventKind::from_tag(tag)));
            }
        }
        None
    }
}

/// The next-event engine: jump the clock straight to the next cycle at
/// which the scheduling decision can change.
///
/// Per decision the loop (a) jumps over fully idle spans to the first
/// queued arrival (refresh deadlines inside a dead span cannot enable any
/// command, and their effects are deadline-derived, so catching them up at
/// the arrival is exact), (b) services due refreshes, (c) asks the core
/// for a decision, and (d) on `Blocked` pushes the reported
/// next-actionable times plus the tREFI deadline into the [`EventQueue`]
/// and advances to the earliest queued event.
#[derive(Debug, Clone, Copy, Default)]
pub struct EventEngine;

impl DramEngine for EventEngine {
    fn name(&self) -> &'static str {
        "event"
    }

    fn drive(&self, core: &mut ChannelCore) {
        let mut queue = EventQueue::new();
        while core.pending() > 0 {
            core.reclaim();
            // Dead span: nothing queued has arrived yet, so no command can
            // issue before the first arrival — jump it in one assignment.
            let first = core.first_live_arrival();
            if core.now() < first {
                core.advance_to(first);
            }
            core.service_refresh();
            match core.decide() {
                Decision::Issued => {}
                Decision::Blocked { next_ready, next_arrival } => {
                    if let Some(t) = next_ready {
                        queue.push(t, EventKind::CandidateReady);
                    }
                    if let Some(t) = next_arrival {
                        queue.push(t, EventKind::Arrival);
                    }
                    if let Some(due) = core.next_refresh_deadline() {
                        queue.arm_refresh(due);
                    }
                    match queue.pop_after(core.now()) {
                        Some((cycle, _)) => core.advance_to(cycle),
                        // Blocked guarantees at least one bound: a nonempty
                        // candidate set reports `next_ready`, and an empty
                        // one implies the window head has not arrived,
                        // which reports `next_arrival`.
                        None => unreachable!("blocked with no future event"),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::DramAddress;
    use crate::command::Request;
    use crate::spec::DramSpec;
    use crate::{ChannelSim, SchedConfig};

    #[test]
    fn parse_recognizes_both_engines() {
        assert_eq!(EngineKind::parse("stepped"), Some(EngineKind::Stepped));
        assert_eq!(EngineKind::parse("CYCLE"), Some(EngineKind::Stepped));
        assert_eq!(EngineKind::parse(" event "), Some(EngineKind::Event));
        assert_eq!(EngineKind::parse("next-event"), Some(EngineKind::Event));
        assert_eq!(EngineKind::parse("warp-speed"), None);
        assert_eq!(EngineKind::Stepped.name(), "stepped");
        assert_eq!(EngineKind::Event.to_string(), "event");
    }

    #[test]
    fn event_queue_orders_and_discards_stale() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(50, EventKind::Arrival);
        q.push(10, EventKind::CandidateReady);
        q.arm_refresh(30);
        q.arm_refresh(30); // duplicate arm is a no-op
        assert_eq!(q.len(), 3);
        // Everything at or before `now` is stale and skipped.
        assert_eq!(q.pop_after(10), Some((30, EventKind::RefreshDue)));
        assert_eq!(q.pop_after(30), Some((50, EventKind::Arrival)));
        assert_eq!(q.pop_after(50), None);
    }

    fn run_engine(spec: &DramSpec, engine: EngineKind) -> (crate::DramStats, String) {
        let mut ch = ChannelSim::with_config(spec, SchedConfig { engine, ..Default::default() });
        ch.enable_logging();
        for i in 0..64u64 {
            let addr = DramAddress {
                channel: 0,
                rank: i % 2,
                bank: (i * 7) % 16,
                row: (i * 3) % 32,
                column: i % 64,
            };
            let req = if i % 4 == 0 { Request::write(addr) } else { Request::read(addr) };
            ch.push(req.at(i * 37)); // sparse arrivals: exercises jumps
        }
        let stats = ch.run();
        (stats, format!("{:?}", ch.log()))
    }

    /// The engines must agree command-for-command on a simple stream; the
    /// exhaustive comparison lives in `tests/proptests.rs`.
    #[test]
    fn engines_agree_on_a_mixed_stream() {
        let spec = DramSpec::lpddr5_6400(16, 256 << 20);
        let (stepped_stats, stepped_log) = run_engine(&spec, EngineKind::Stepped);
        let (event_stats, event_log) = run_engine(&spec, EngineKind::Event);
        assert_eq!(stepped_stats, event_stats);
        assert_eq!(stepped_log, event_log);
    }
}
