//! DRAM energy model (DRAMPower-style, IDD-derived approximations).
//!
//! Energy per operation for LPDDR5-class devices, used by the
//! energy-per-token experiment: one of the qualitative claims around
//! near-bank PIM is that it saves the interface (I/O) energy of moving
//! weights across the bus, since MAC operands never leave the die.

use serde::{Deserialize, Serialize};

use crate::spec::DramSpec;
use crate::stats::DramStats;

/// Per-operation energy parameters, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy of one ACT+PRE pair (row cycle), pJ.
    pub act_pre_pj: f64,
    /// Core (array) energy per column access, pJ per transfer.
    pub core_access_pj: f64,
    /// Interface (I/O + bus) energy per *bit* moved across the pins, pJ.
    pub io_pj_per_bit: f64,
    /// Refresh energy per all-bank refresh, pJ.
    pub refresh_pj: f64,
    /// Background power per rank, milliwatts.
    pub background_mw_per_rank: f64,
}

impl Default for EnergyModel {
    /// LPDDR5-class figures: ~2 nJ per row cycle, ~0.3 nJ core per 32 B
    /// column access, ~2 pJ/bit interface energy, ~28 nJ per tRFCab.
    fn default() -> Self {
        EnergyModel {
            act_pre_pj: 2000.0,
            core_access_pj: 300.0,
            io_pj_per_bit: 2.0,
            refresh_pj: 28_000.0,
            background_mw_per_rank: 40.0,
        }
    }
}

/// Energy breakdown of a simulated interval, in microjoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Row activate/precharge energy.
    pub act_pre_uj: f64,
    /// Core column-access energy.
    pub core_uj: f64,
    /// Interface (pin) energy — zero for PIM-internal accesses.
    pub io_uj: f64,
    /// Refresh energy.
    pub refresh_uj: f64,
    /// Background energy over the elapsed time.
    pub background_uj: f64,
}

impl EnergyBreakdown {
    /// Total energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.act_pre_uj + self.core_uj + self.io_uj + self.refresh_uj + self.background_uj
    }
}

impl EnergyModel {
    /// Energy of a scheduled interval described by `stats` over
    /// `elapsed_ns`, with data crossing the pins (normal SoC access).
    pub fn energy(&self, spec: &DramSpec, stats: &DramStats, elapsed_ns: f64) -> EnergyBreakdown {
        self.energy_inner(spec, stats, elapsed_ns, true)
    }

    /// Energy of a PIM-internal interval: column data is consumed by the
    /// near-bank PUs and never crosses the interface (no I/O energy).
    pub fn energy_internal(
        &self,
        spec: &DramSpec,
        stats: &DramStats,
        elapsed_ns: f64,
    ) -> EnergyBreakdown {
        self.energy_inner(spec, stats, elapsed_ns, false)
    }

    fn energy_inner(
        &self,
        spec: &DramSpec,
        stats: &DramStats,
        elapsed_ns: f64,
        io: bool,
    ) -> EnergyBreakdown {
        let accesses = (stats.reads + stats.writes) as f64;
        let bits = stats.bytes(spec.topology.transfer_bytes) as f64 * 8.0;
        let ranks = (spec.topology.channels * spec.topology.ranks) as f64;
        EnergyBreakdown {
            act_pre_uj: stats.activates as f64 * self.act_pre_pj / 1e6,
            core_uj: accesses * self.core_access_pj / 1e6,
            io_uj: if io { bits * self.io_pj_per_bit / 1e6 } else { 0.0 },
            refresh_uj: stats.refreshes as f64 * self.refresh_pj / 1e6,
            background_uj: self.background_mw_per_rank * ranks * elapsed_ns / 1e9 / 1e3,
        }
    }

    /// Convenience: energy (µJ) of streaming `bytes` once at the achieved
    /// `bandwidth` with a given row-buffer hit rate, without running the
    /// full simulator — used for back-of-envelope comparisons in benches.
    pub fn streaming_energy_uj(&self, spec: &DramSpec, bytes: u64, hit_rate: f64, io: bool) -> f64 {
        let tx = spec.topology.transfer_bytes;
        let accesses = bytes.div_ceil(tx);
        let rows = (accesses as f64 * (1.0 - hit_rate)).ceil();
        let stats = DramStats { reads: accesses, activates: rows as u64, ..Default::default() };
        let ns = bytes as f64 / spec.peak_bandwidth_bytes_per_sec() * 1e9;
        self.energy_inner(spec, &stats, ns, io).total_uj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DramStats;

    fn spec() -> DramSpec {
        DramSpec::lpddr5_6400(64, 8 << 30)
    }

    #[test]
    fn internal_access_saves_io_energy() {
        let m = EnergyModel::default();
        let stats = DramStats { reads: 1000, activates: 20, ..Default::default() };
        let ext = m.energy(&spec(), &stats, 10_000.0);
        let int = m.energy_internal(&spec(), &stats, 10_000.0);
        assert!(ext.total_uj() > int.total_uj());
        assert_eq!(int.io_uj, 0.0);
        assert!(ext.io_uj > 0.0);
        // Everything else identical.
        assert_eq!(ext.core_uj, int.core_uj);
        assert_eq!(ext.act_pre_uj, int.act_pre_uj);
    }

    #[test]
    fn energy_scales_with_traffic() {
        let m = EnergyModel::default();
        let s1 = DramStats { reads: 1000, activates: 10, ..Default::default() };
        let s2 = DramStats { reads: 2000, activates: 20, ..Default::default() };
        let e1 = m.energy(&spec(), &s1, 1000.0);
        let e2 = m.energy(&spec(), &s2, 1000.0);
        assert!((e2.core_uj / e1.core_uj - 2.0).abs() < 1e-9);
        assert!((e2.io_uj / e1.io_uj - 2.0).abs() < 1e-9);
        assert_eq!(e1.background_uj, e2.background_uj, "background depends only on time");
    }

    #[test]
    fn lower_hit_rate_costs_more() {
        let m = EnergyModel::default();
        let s = spec();
        let hot = m.streaming_energy_uj(&s, 1 << 20, 0.95, true);
        let cold = m.streaming_energy_uj(&s, 1 << 20, 0.1, true);
        assert!(cold > hot);
    }

    #[test]
    fn io_energy_magnitude_is_plausible() {
        // Streaming 1 GB at 2 pJ/bit ~ 17 mJ of interface energy.
        let m = EnergyModel::default();
        let s = spec();
        let uj = m.streaming_energy_uj(&s, 1 << 30, 0.9, true);
        assert!((10_000.0..60_000.0).contains(&uj), "got {uj} uJ");
    }
}
