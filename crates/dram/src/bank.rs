//! Per-bank and per-rank timing state machines.

use crate::spec::Timing;

/// Timing state of a single DRAM bank.
#[derive(Debug, Clone)]
pub(crate) struct BankState {
    /// Currently open row, if any.
    pub open_row: Option<u64>,
    /// Earliest cycle an ACT may issue to this bank (tRC / tRP).
    pub next_act: u64,
    /// Earliest cycle a PRE may issue to this bank (tRAS / tRTP / tWR).
    pub next_pre: u64,
    /// Earliest cycle a RD may issue (tRCD after ACT).
    pub next_rd: u64,
    /// Earliest cycle a WR may issue.
    pub next_wr: u64,
}

impl BankState {
    pub(crate) fn new() -> Self {
        BankState { open_row: None, next_act: 0, next_pre: 0, next_rd: 0, next_wr: 0 }
    }

    /// Apply an ACT issued at cycle `t`.
    pub(crate) fn activate(&mut self, t: u64, row: u64, tm: &Timing) {
        debug_assert!(self.open_row.is_none(), "ACT to open bank");
        debug_assert!(t >= self.next_act, "ACT timing violation");
        self.open_row = Some(row);
        self.next_rd = t + tm.rcd;
        self.next_wr = t + tm.rcd;
        self.next_pre = t + tm.ras;
        self.next_act = t + tm.rc;
    }

    /// Apply a PRE issued at cycle `t`.
    pub(crate) fn precharge(&mut self, t: u64, tm: &Timing) {
        debug_assert!(self.open_row.is_some(), "PRE to closed bank");
        debug_assert!(t >= self.next_pre, "PRE timing violation");
        self.open_row = None;
        self.next_act = self.next_act.max(t + tm.rp);
    }

    /// Apply a RD issued at cycle `t`.
    pub(crate) fn read(&mut self, t: u64, tm: &Timing) {
        debug_assert!(self.open_row.is_some());
        debug_assert!(t >= self.next_rd, "RD timing violation");
        self.next_pre = self.next_pre.max(t + tm.rtp);
        self.next_rd = self.next_rd.max(t + tm.ccd_l);
        self.next_wr = self.next_wr.max(t + tm.cl + tm.burst_cycles + tm.rtw - tm.cwl);
    }

    /// Apply a WR issued at cycle `t`.
    pub(crate) fn write(&mut self, t: u64, tm: &Timing) {
        debug_assert!(self.open_row.is_some());
        debug_assert!(t >= self.next_wr, "WR timing violation");
        let data_end = t + tm.cwl + tm.burst_cycles;
        self.next_pre = self.next_pre.max(data_end + tm.wr);
        self.next_wr = self.next_wr.max(t + tm.ccd_l);
        self.next_rd = self.next_rd.max(data_end + tm.wtr);
    }
}

/// Rank-level constraints: tRRD, tFAW, and refresh.
#[derive(Debug, Clone)]
pub(crate) struct RankState {
    /// Timestamps of the last four ACTs (for the four-activate window).
    pub act_window: std::collections::VecDeque<u64>,
    /// Last ACT cycle in the rank (tRRD_S) — `u64::MAX` sentinel when none.
    pub last_act: Option<u64>,
    /// Last ACT cycle per bank group (tRRD_L).
    pub last_act_per_group: Vec<Option<u64>>,
    /// Cycle at which the next refresh is due (tREFI schedule).
    pub next_ref: u64,
}

impl RankState {
    pub(crate) fn new(bank_groups: usize, refi: u64) -> Self {
        RankState {
            act_window: std::collections::VecDeque::with_capacity(4),
            last_act: None,
            last_act_per_group: vec![None; bank_groups],
            next_ref: if refi == 0 { u64::MAX } else { refi },
        }
    }

    /// Earliest cycle at which a new ACT to `group` satisfies tRRD and tFAW.
    pub(crate) fn act_ready(&self, group: usize, tm: &Timing) -> u64 {
        let mut ready = 0;
        if let Some(last) = self.last_act {
            ready = ready.max(last + tm.rrd_s);
        }
        if let Some(last) = self.last_act_per_group[group] {
            ready = ready.max(last + tm.rrd_l);
        }
        if self.act_window.len() == 4 {
            ready = ready.max(self.act_window[0] + tm.faw);
        }
        ready
    }

    /// Record an ACT issued at cycle `t` to `group`.
    pub(crate) fn record_act(&mut self, t: u64, group: usize) {
        if self.act_window.len() == 4 {
            self.act_window.pop_front();
        }
        self.act_window.push_back(t);
        self.last_act = Some(t);
        self.last_act_per_group[group] = Some(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DramSpec;

    fn timing() -> Timing {
        DramSpec::lpddr5_6400(64, 8 << 30).timing
    }

    #[test]
    fn act_then_read_respects_trcd() {
        let tm = timing();
        let mut b = BankState::new();
        b.activate(100, 7, &tm);
        assert_eq!(b.open_row, Some(7));
        assert_eq!(b.next_rd, 100 + tm.rcd);
        assert_eq!(b.next_pre, 100 + tm.ras);
    }

    #[test]
    fn write_extends_precharge_by_twr() {
        let tm = timing();
        let mut b = BankState::new();
        b.activate(0, 1, &tm);
        let t = b.next_wr;
        b.write(t, &tm);
        assert!(b.next_pre >= t + tm.cwl + tm.burst_cycles + tm.wr);
    }

    #[test]
    fn precharge_closes_and_sets_trp() {
        let tm = timing();
        let mut b = BankState::new();
        b.activate(0, 1, &tm);
        let t = b.next_pre;
        b.precharge(t, &tm);
        assert_eq!(b.open_row, None);
        assert!(b.next_act >= t + tm.rp);
        // tRC from the original ACT must also hold.
        assert!(b.next_act >= tm.rc);
    }

    #[test]
    fn faw_blocks_fifth_activate() {
        let tm = timing();
        let mut r = RankState::new(4, 0);
        for (i, t) in [0u64, 10, 20, 30].iter().enumerate() {
            let ready = r.act_ready(i % 4, &tm);
            assert!(*t >= ready || i == 0 || tm.rrd_s <= 10);
            r.record_act(*t, i % 4);
        }
        let ready = r.act_ready(0, &tm);
        assert!(ready >= tm.faw, "fifth ACT must wait for the FAW window, got {ready}");
    }

    #[test]
    fn rrd_l_within_group_is_at_least_rrd_s() {
        let tm = timing();
        let mut r = RankState::new(4, 0);
        r.record_act(100, 2);
        assert!(r.act_ready(2, &tm) >= r.act_ready(3, &tm));
    }
}
