//! The PA-to-DA translation interface consumed by the DRAM backend.

use crate::addr::DramAddress;

/// Translates a physical address into a decoded DRAM device address.
///
/// The FACIL memory-controller frontend (`facil-core`) implements this for
/// conventional and PIM-optimized mapping schemes; the DRAM backend is
/// mapping-agnostic.
///
/// Implementations must be *bijective at transfer granularity*: distinct
/// transfer-aligned physical addresses must map to distinct device addresses.
pub trait AddressMapper {
    /// Map a physical byte address to the device address of its transfer.
    /// The low `log2(transfer_bytes)` bits of `pa` are ignored.
    fn map(&self, pa: u64) -> DramAddress;
}

/// Adapter turning a closure into an [`AddressMapper`].
pub struct FnMapper<F>(pub F);

impl<F> std::fmt::Debug for FnMapper<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnMapper").finish_non_exhaustive()
    }
}

impl<F: Fn(u64) -> DramAddress> AddressMapper for FnMapper<F> {
    fn map(&self, pa: u64) -> DramAddress {
        (self.0)(pa)
    }
}

impl<M: AddressMapper + ?Sized> AddressMapper for &M {
    fn map(&self, pa: u64) -> DramAddress {
        (**self).map(pa)
    }
}

impl<M: AddressMapper + ?Sized> AddressMapper for Box<M> {
    fn map(&self, pa: u64) -> DramAddress {
        (**self).map(pa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_mapper_delegates() {
        let m = FnMapper(|pa: u64| DramAddress {
            channel: pa & 1,
            rank: 0,
            bank: 0,
            row: pa >> 1,
            column: 0,
        });
        assert_eq!(m.map(3).channel, 1);
        assert_eq!(m.map(4).row, 2);
        // Reference and Box blanket impls.
        let r: &dyn AddressMapper = &m;
        assert_eq!(r.map(3).channel, 1);
    }
}
