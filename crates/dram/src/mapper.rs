//! The PA-to-DA translation interface consumed by the DRAM backend.

use std::fmt;

use crate::addr::DramAddress;

/// An address the mapper could not translate (e.g. an unmapped virtual
/// address when replaying a VA trace through a page table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapFault {
    /// The untranslatable byte address.
    pub addr: u64,
}

impl fmt::Display for MapFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "address {:#x} cannot be translated to a DRAM address", self.addr)
    }
}

impl std::error::Error for MapFault {}

/// Translates a physical address into a decoded DRAM device address.
///
/// The FACIL memory-controller frontend (`facil-core`) implements this for
/// conventional and PIM-optimized mapping schemes; the DRAM backend is
/// mapping-agnostic. Translation is fallible so that virtual-address views
/// (a page-table walk can fault) propagate errors instead of panicking;
/// plain PA-level schemes are total and always return `Ok`.
///
/// Implementations must be *bijective at transfer granularity* over the
/// addresses they accept: distinct transfer-aligned addresses must map to
/// distinct device addresses.
pub trait AddressMapper {
    /// Map a byte address to the device address of its transfer. The low
    /// `log2(transfer_bytes)` bits of `pa` are ignored.
    ///
    /// # Errors
    ///
    /// [`MapFault`] if the address has no translation (unmapped VA).
    fn map(&self, pa: u64) -> Result<DramAddress, MapFault>;
}

/// Adapter turning an infallible closure into an [`AddressMapper`].
pub struct FnMapper<F>(pub F);

impl<F> std::fmt::Debug for FnMapper<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnMapper").finish_non_exhaustive()
    }
}

impl<F: Fn(u64) -> DramAddress> AddressMapper for FnMapper<F> {
    fn map(&self, pa: u64) -> Result<DramAddress, MapFault> {
        Ok((self.0)(pa))
    }
}

impl<M: AddressMapper + ?Sized> AddressMapper for &M {
    fn map(&self, pa: u64) -> Result<DramAddress, MapFault> {
        (**self).map(pa)
    }
}

impl<M: AddressMapper + ?Sized> AddressMapper for Box<M> {
    fn map(&self, pa: u64) -> Result<DramAddress, MapFault> {
        (**self).map(pa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_mapper_delegates() {
        let m = FnMapper(|pa: u64| DramAddress {
            channel: pa & 1,
            rank: 0,
            bank: 0,
            row: pa >> 1,
            column: 0,
        });
        assert_eq!(m.map(3).unwrap().channel, 1);
        assert_eq!(m.map(4).unwrap().row, 2);
        // Reference and Box blanket impls.
        let r: &dyn AddressMapper = &m;
        assert_eq!(r.map(3).unwrap().channel, 1);
    }

    #[test]
    fn map_fault_displays_the_address() {
        let e = MapFault { addr: 0x1000 };
        assert!(e.to_string().contains("0x1000"));
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<MapFault>();
    }
}
