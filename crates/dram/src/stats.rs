//! Aggregated statistics reported by the DRAM simulator.

use serde::{Deserialize, Serialize};

/// Counters collected while scheduling a request stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Column reads issued.
    pub reads: u64,
    /// Column writes issued.
    pub writes: u64,
    /// Row activates issued.
    pub activates: u64,
    /// Precharges issued (excluding refresh-forced closes).
    pub precharges: u64,
    /// All-bank refreshes issued.
    pub refreshes: u64,
    /// Column accesses that found their row already open.
    pub row_hits: u64,
    /// Column accesses that required opening a closed bank.
    pub row_misses: u64,
    /// Column accesses that required closing a different open row first.
    pub row_conflicts: u64,
    /// Cycle at which the last data beat left the bus.
    pub finish_cycle: u64,
}

impl DramStats {
    /// Total bytes moved given the transfer size.
    pub fn bytes(&self, transfer_bytes: u64) -> u64 {
        (self.reads + self.writes) * transfer_bytes
    }

    /// Row-buffer hit rate over all column accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Merge counters from another channel, taking the max finish cycle
    /// (channels run concurrently).
    pub fn merge(&mut self, other: &DramStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.activates += other.activates;
        self.precharges += other.precharges;
        self.refreshes += other.refreshes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.finish_cycle = self.finish_cycle.max(other.finish_cycle);
    }
}

/// Result of simulating a request stream to completion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Aggregated counters.
    pub stats: DramStats,
    /// Total elapsed time in nanoseconds (max over channels).
    pub elapsed_ns: f64,
    /// Achieved bandwidth in bytes/second.
    pub bandwidth_bytes_per_sec: f64,
}

impl SimResult {
    /// Achieved bandwidth as a fraction of the theoretical peak.
    pub fn utilization(&self, peak_bytes_per_sec: f64) -> f64 {
        self.bandwidth_bytes_per_sec / peak_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_takes_max_finish() {
        let mut a = DramStats { reads: 2, finish_cycle: 10, row_hits: 1, ..Default::default() };
        let b = DramStats { reads: 3, finish_cycle: 7, row_misses: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.reads, 5);
        assert_eq!(a.finish_cycle, 10);
        assert!((a.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_hit_rate_is_zero() {
        assert_eq!(DramStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn bytes_counts_both_directions() {
        let s = DramStats { reads: 3, writes: 5, ..Default::default() };
        assert_eq!(s.bytes(32), 256);
    }
}
