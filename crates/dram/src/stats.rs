//! Aggregated statistics reported by the DRAM simulator.

use facil_telemetry::MetricsRegistry;
use serde::{Deserialize, Serialize};

/// Counters collected while scheduling a request stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Column reads issued.
    pub reads: u64,
    /// Column writes issued.
    pub writes: u64,
    /// Row activates issued.
    pub activates: u64,
    /// Precharges issued (excluding refresh-forced closes).
    pub precharges: u64,
    /// All-bank refreshes issued.
    pub refreshes: u64,
    /// Column accesses that found their row already open.
    pub row_hits: u64,
    /// Column accesses that required opening a closed bank.
    pub row_misses: u64,
    /// Column accesses that required closing a different open row first.
    pub row_conflicts: u64,
    /// Data-bus occupancy in cycles, derived from command timestamps (one
    /// burst per column access; bursts never overlap). Identical whether
    /// the engine stepped through or jumped over idle spans, and summed
    /// across channels on [`DramStats::merge`].
    pub busy_cycles: u64,
    /// Cycles up to [`DramStats::finish_cycle`] with no data on the bus —
    /// `finish_cycle - busy_cycles` per channel, derived at the end of a
    /// run rather than counted in the scheduling loop (a per-cycle counter
    /// would diverge between the stepped and event engines). Summed across
    /// channels on [`DramStats::merge`].
    pub idle_cycles: u64,
    /// Cycle at which the last data beat left the bus.
    pub finish_cycle: u64,
}

impl DramStats {
    /// Total bytes moved given the transfer size.
    pub fn bytes(&self, transfer_bytes: u64) -> u64 {
        (self.reads + self.writes) * transfer_bytes
    }

    /// Total column accesses classified by row-buffer outcome
    /// (hits + misses + conflicts). Zero means the stats carry no
    /// row-locality signal at all — callers deriving rates should treat
    /// that case as "no data", not as a measured 0% (see
    /// `facil_mapsearch::WorkloadProfile::measured_hit_rate`).
    pub fn column_accesses(&self) -> u64 {
        self.row_hits + self.row_misses + self.row_conflicts
    }

    /// Row-buffer hit rate over all column accesses.
    ///
    /// Returns `0.0` — never NaN — when [`Self::column_accesses`] is zero,
    /// so the value is always safe to plot or aggregate. Use
    /// `column_accesses() == 0` to distinguish "no accesses recorded" from
    /// a genuinely hit-free (all-miss) run.
    pub fn hit_rate(&self) -> f64 {
        let total = self.column_accesses();
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Fraction of the elapsed cycles (per-channel busy + idle) with data
    /// on the bus. Returns `0.0` — never NaN — for an empty run.
    pub fn bus_utilization(&self) -> f64 {
        let total = self.busy_cycles + self.idle_cycles;
        if total == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / total as f64
        }
    }

    /// Register every counter into `reg` under `dram.*` names, plus the
    /// derived `dram.hit_rate` gauge. Accumulates on repeated calls, which
    /// is exactly the [`DramStats::merge`] behavior for the counters.
    pub fn register_into(&self, reg: &mut MetricsRegistry) {
        reg.inc("dram.reads", self.reads);
        reg.inc("dram.writes", self.writes);
        reg.inc("dram.activates", self.activates);
        reg.inc("dram.precharges", self.precharges);
        reg.inc("dram.refreshes", self.refreshes);
        reg.inc("dram.row_hits", self.row_hits);
        reg.inc("dram.row_misses", self.row_misses);
        reg.inc("dram.row_conflicts", self.row_conflicts);
        reg.inc("dram.busy_cycles", self.busy_cycles);
        reg.inc("dram.idle_cycles", self.idle_cycles);
        reg.set_gauge("dram.finish_cycle", self.finish_cycle as f64);
        reg.set_gauge("dram.hit_rate", self.hit_rate());
        reg.set_gauge("dram.bus_utilization", self.bus_utilization());
    }

    /// Merge counters from another channel, taking the max finish cycle
    /// (channels run concurrently).
    pub fn merge(&mut self, other: &DramStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.activates += other.activates;
        self.precharges += other.precharges;
        self.refreshes += other.refreshes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.busy_cycles += other.busy_cycles;
        self.idle_cycles += other.idle_cycles;
        self.finish_cycle = self.finish_cycle.max(other.finish_cycle);
    }
}

/// Result of simulating a request stream to completion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Aggregated counters.
    pub stats: DramStats,
    /// Total elapsed time in nanoseconds (max over channels).
    pub elapsed_ns: f64,
    /// Achieved bandwidth in bytes/second.
    pub bandwidth_bytes_per_sec: f64,
}

impl SimResult {
    /// Achieved bandwidth as a fraction of the theoretical peak.
    pub fn utilization(&self, peak_bytes_per_sec: f64) -> f64 {
        self.bandwidth_bytes_per_sec / peak_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_takes_max_finish() {
        let mut a = DramStats { reads: 2, finish_cycle: 10, row_hits: 1, ..Default::default() };
        let b = DramStats { reads: 3, finish_cycle: 7, row_misses: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.reads, 5);
        assert_eq!(a.finish_cycle, 10);
        assert!((a.hit_rate() - 0.5).abs() < 1e-12);
    }

    // Exhaustive struct literals — no `..Default::default()` — so adding a
    // counter to DramStats without extending merge() (and this test) fails
    // to compile rather than silently dropping the new field on merge.
    #[test]
    fn merge_covers_every_field() {
        let mut a = DramStats {
            reads: 1,
            writes: 2,
            activates: 3,
            precharges: 4,
            refreshes: 5,
            row_hits: 6,
            row_misses: 7,
            row_conflicts: 8,
            busy_cycles: 2,
            idle_cycles: 7,
            finish_cycle: 9,
        };
        let b = DramStats {
            reads: 10,
            writes: 20,
            activates: 30,
            precharges: 40,
            refreshes: 50,
            row_hits: 60,
            row_misses: 70,
            row_conflicts: 80,
            busy_cycles: 1,
            idle_cycles: 4,
            finish_cycle: 5,
        };
        a.merge(&b);
        let expected = DramStats {
            reads: 11,
            writes: 22,
            activates: 33,
            precharges: 44,
            refreshes: 55,
            row_hits: 66,
            row_misses: 77,
            row_conflicts: 88,
            busy_cycles: 3,  // per-channel cycles sum
            idle_cycles: 11, // per-channel cycles sum
            finish_cycle: 9, // max, not sum: channels run concurrently
        };
        assert_eq!(a, expected);
    }

    #[test]
    fn merge_into_default_is_identity() {
        let b = DramStats {
            reads: 1,
            writes: 2,
            activates: 3,
            precharges: 4,
            refreshes: 5,
            row_hits: 6,
            row_misses: 7,
            row_conflicts: 8,
            busy_cycles: 2,
            idle_cycles: 7,
            finish_cycle: 9,
        };
        let mut a = DramStats::default();
        a.merge(&b);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_hit_rate_is_zero() {
        assert_eq!(DramStats::default().hit_rate(), 0.0);
        assert!(DramStats::default().hit_rate().is_finite(), "never NaN");
        // A single miss still yields a well-defined (zero) hit rate.
        let s = DramStats { row_misses: 1, ..Default::default() };
        assert_eq!(s.hit_rate(), 0.0);
        // column_accesses() is the disambiguator: 0 = no data, >0 = real 0%.
        assert_eq!(DramStats::default().column_accesses(), 0);
        assert_eq!(s.column_accesses(), 1);
    }

    #[test]
    fn column_accesses_sums_all_outcomes() {
        let s = DramStats {
            row_hits: 3,
            row_misses: 2,
            row_conflicts: 4,
            reads: 100, // reads/writes are issue counters, not outcome counters
            ..Default::default()
        };
        assert_eq!(s.column_accesses(), 9);
        assert!((s.hit_rate() - 3.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn zero_access_utilization_is_zero() {
        let r = SimResult {
            stats: DramStats::default(),
            elapsed_ns: 0.0,
            bandwidth_bytes_per_sec: 0.0,
        };
        assert_eq!(r.utilization(51.2e9), 0.0);
        assert!(r.utilization(51.2e9).is_finite());
    }

    #[test]
    fn register_into_exposes_all_counters() {
        use facil_telemetry::MetricsRegistry;

        let s = DramStats {
            reads: 1,
            writes: 2,
            activates: 3,
            precharges: 4,
            refreshes: 5,
            row_hits: 6,
            row_misses: 2,
            row_conflicts: 0,
            busy_cycles: 30,
            idle_cycles: 60,
            finish_cycle: 90,
        };
        let mut reg = MetricsRegistry::new();
        s.register_into(&mut reg);
        assert_eq!(reg.counter("dram.reads"), 1);
        assert_eq!(reg.counter("dram.writes"), 2);
        assert_eq!(reg.counter("dram.activates"), 3);
        assert_eq!(reg.counter("dram.precharges"), 4);
        assert_eq!(reg.counter("dram.refreshes"), 5);
        assert_eq!(reg.counter("dram.row_hits"), 6);
        assert_eq!(reg.counter("dram.row_misses"), 2);
        assert_eq!(reg.counter("dram.row_conflicts"), 0);
        assert_eq!(reg.counter("dram.busy_cycles"), 30);
        assert_eq!(reg.counter("dram.idle_cycles"), 60);
        assert_eq!(reg.gauge("dram.finish_cycle"), Some(90.0));
        assert_eq!(reg.gauge("dram.hit_rate"), Some(0.75));
        assert_eq!(reg.gauge("dram.bus_utilization"), Some(30.0 / 90.0));
        // Re-registering accumulates like merge().
        s.register_into(&mut reg);
        assert_eq!(reg.counter("dram.reads"), 2);
    }

    #[test]
    fn bus_utilization_is_busy_over_elapsed() {
        assert_eq!(DramStats::default().bus_utilization(), 0.0);
        assert!(DramStats::default().bus_utilization().is_finite(), "never NaN");
        let s = DramStats { busy_cycles: 25, idle_cycles: 75, ..Default::default() };
        assert!((s.bus_utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn bytes_counts_both_directions() {
        let s = DramStats { reads: 3, writes: 5, ..Default::default() };
        assert_eq!(s.bytes(32), 256);
    }
}
