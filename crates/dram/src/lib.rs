//! # facil-dram
//!
//! Cycle-level LPDDR5/LPDDR5X DRAM simulator — the memory substrate of the
//! FACIL (HPCA 2025) reproduction.
//!
//! The FACIL paper evaluates its flexible PA-to-DA address mapping on a
//! DRAMsim-derived simulator extended with LPDDR5/X timing (paper Section
//! VI-A). This crate provides that substrate from scratch:
//!
//! * [`spec::DramSpec`] — JEDEC-shaped LPDDR5/5X presets (timing, topology),
//! * [`channel::ChannelSim`] — per-channel FR-FCFS, open-page scheduler with
//!   bank/rank state machines (tRCD/tRP/tRAS/tCCD/tRRD/tFAW/tWR/tRTP/tWTR,
//!   refresh),
//! * [`engine`] — the simulation engines driving the scheduler: a
//!   cycle-stepped reference and the default next-event engine that jumps
//!   idle cycles (bit-identical results; select with
//!   [`SchedConfig::engine`] or `FACIL_DRAM_ENGINE`),
//! * [`controller::DramSystem`] — the multi-channel backend,
//! * [`trace`] — PA-trace replay through an arbitrary [`mapper::AddressMapper`],
//! * [`functional::FunctionalMemory`] — a data-value model keyed by *device*
//!   address, so two different mappings demonstrably view the same cells.
//!
//! ```
//! use facil_dram::{DramSpec, DramAddress, Request, DramSystem};
//!
//! let spec = DramSpec::lpddr5_6400(64, 8 << 30); // iPhone 15 Pro memory
//! let mut sys = DramSystem::new(&spec);
//! sys.push(Request::read(DramAddress { channel: 0, rank: 0, bank: 0, row: 0, column: 0 }));
//! let result = sys.run();
//! assert_eq!(result.stats.reads, 1);
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod allbank;
pub(crate) mod bank;
pub mod channel;
pub mod command;
pub mod controller;
pub mod energy;
pub mod engine;
pub mod functional;
pub mod mapper;
pub mod spec;
pub mod stats;
pub mod trace;
pub mod verifylog;

pub use addr::{DramAddress, Topology};
pub use allbank::{
    run_allbank, run_allbank_logged, AllBankCommand, AllBankCommandKind, AllBankResult, PimStream,
};
pub use channel::{ChannelCore, ChannelSim, Decision, PagePolicy, SchedConfig};
pub use command::{CommandKind, Op, Request};
pub use controller::DramSystem;
pub use energy::{EnergyBreakdown, EnergyModel};
pub use engine::{DramEngine, EngineKind, EventEngine, EventQueue, SteppedEngine};
pub use functional::{CellStore, FunctionalMemory};
pub use mapper::{AddressMapper, FnMapper, MapFault};
pub use spec::{DramKind, DramSpec, Timing};
pub use stats::{DramStats, SimResult};
pub use trace::{
    parse_trace, parse_trace_line, replay_on, run_trace, sequential_trace, TraceEntry, TraceOptions,
};
pub use verifylog::{verify_allbank_log, verify_log, LoggedCommand, Violation};
