//! DRAM geometry ([`Topology`]) and decoded device addresses ([`DramAddress`]).

use serde::{Deserialize, Serialize};

/// Geometry of a DRAM memory system.
///
/// All dimensions must be powers of two so that physical-address bits can be
/// assigned to fields exactly (the FACIL mapping formulation operates on bit
/// positions; see `facil-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    /// Number of independent channels.
    pub channels: u64,
    /// Ranks per channel.
    pub ranks: u64,
    /// Bank groups per rank.
    pub bank_groups: u64,
    /// Banks per bank group.
    pub banks_per_group: u64,
    /// Rows per bank.
    pub rows: u64,
    /// Row buffer size in bytes (2048 for LPDDR5).
    pub row_bytes: u64,
    /// Bytes moved by one column access (32 for LPDDR5 BL16 x16).
    pub transfer_bytes: u64,
}

impl Topology {
    /// Create a topology, validating that every dimension is a power of two.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or not a power of two, or if the row
    /// size is not a multiple of the transfer size.
    pub fn new(
        channels: u64,
        ranks: u64,
        bank_groups: u64,
        banks_per_group: u64,
        rows: u64,
        row_bytes: u64,
        transfer_bytes: u64,
    ) -> Self {
        for (name, v) in [
            ("channels", channels),
            ("ranks", ranks),
            ("bank_groups", bank_groups),
            ("banks_per_group", banks_per_group),
            ("rows", rows),
            ("row_bytes", row_bytes),
            ("transfer_bytes", transfer_bytes),
        ] {
            assert!(v > 0 && v.is_power_of_two(), "{name} must be a nonzero power of two, got {v}");
        }
        assert!(
            row_bytes.is_multiple_of(transfer_bytes),
            "row size must be a multiple of the transfer size"
        );
        Topology { channels, ranks, bank_groups, banks_per_group, rows, row_bytes, transfer_bytes }
    }

    /// Banks per rank (bank groups x banks per group).
    pub fn banks(&self) -> u64 {
        self.bank_groups * self.banks_per_group
    }

    /// Total number of banks in the memory system
    /// (channels x ranks x banks per rank) — the `total bank count` of the
    /// paper's max-MapID formula.
    pub fn total_banks(&self) -> u64 {
        self.channels * self.ranks * self.banks()
    }

    /// Column transfers per row.
    pub fn columns(&self) -> u64 {
        self.row_bytes / self.transfer_bytes
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.channels * self.ranks * self.banks() * self.rows * self.row_bytes
    }

    /// log2 of the channel count.
    pub fn channel_bits(&self) -> u32 {
        self.channels.trailing_zeros()
    }
    /// log2 of the rank count.
    pub fn rank_bits(&self) -> u32 {
        self.ranks.trailing_zeros()
    }
    /// log2 of the per-rank bank count.
    pub fn bank_bits(&self) -> u32 {
        self.banks().trailing_zeros()
    }
    /// log2 of the per-bank row count.
    pub fn row_bits(&self) -> u32 {
        self.rows.trailing_zeros()
    }
    /// log2 of the column-transfer count per row.
    pub fn column_bits(&self) -> u32 {
        self.columns().trailing_zeros()
    }
    /// log2 of the transfer size in bytes.
    pub fn tx_bits(&self) -> u32 {
        self.transfer_bytes.trailing_zeros()
    }
    /// Total physical address bits covered by the topology.
    pub fn pa_bits(&self) -> u32 {
        self.channel_bits()
            + self.rank_bits()
            + self.bank_bits()
            + self.row_bits()
            + self.column_bits()
            + self.tx_bits()
    }
}

/// A fully decoded DRAM device address.
///
/// `bank` is the flat bank index within a rank; `bank_group` can be derived
/// via [`DramAddress::bank_group`] given a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramAddress {
    /// Channel index.
    pub channel: u64,
    /// Rank index within the channel.
    pub rank: u64,
    /// Flat bank index within the rank (bank-group bits are the high bits).
    pub bank: u64,
    /// Row index within the bank.
    pub row: u64,
    /// Column transfer index within the row.
    pub column: u64,
}

impl DramAddress {
    /// Bank group of this address under the given topology.
    pub fn bank_group(&self, topo: &Topology) -> u64 {
        self.bank / topo.banks_per_group
    }

    /// Check that every field is in range for the topology.
    pub fn is_valid(&self, topo: &Topology) -> bool {
        self.channel < topo.channels
            && self.rank < topo.ranks
            && self.bank < topo.banks()
            && self.row < topo.rows
            && self.column < topo.columns()
    }

    /// Flatten into a unique transfer index (useful as a map key and for
    /// bijectivity testing). The field order here is arbitrary but fixed.
    pub fn flat_index(&self, topo: &Topology) -> u64 {
        debug_assert!(self.is_valid(topo));
        (((self.channel * topo.ranks + self.rank) * topo.banks() + self.bank) * topo.rows
            + self.row)
            * topo.columns()
            + self.column
    }
}

impl std::fmt::Display for DramAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ch{} rk{} ba{} row{:#x} col{}",
            self.channel, self.rank, self.bank, self.row, self.column
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(16, 2, 4, 4, 65536, 2048, 32)
    }

    #[test]
    fn bit_accounting_covers_capacity() {
        let t = topo();
        assert_eq!(1u64 << t.pa_bits(), t.capacity_bytes());
        assert_eq!(t.capacity_bytes(), 64 << 30);
    }

    #[test]
    fn total_banks_matches_paper_formula_inputs() {
        let t = topo();
        assert_eq!(t.total_banks(), 16 * 2 * 16);
        assert_eq!(t.columns(), 64);
        assert_eq!(t.column_bits(), 6);
        assert_eq!(t.tx_bits(), 5);
    }

    #[test]
    fn flat_index_is_injective_on_sample() {
        let t = Topology::new(2, 2, 2, 2, 16, 256, 32);
        let mut seen = std::collections::HashSet::new();
        for channel in 0..t.channels {
            for rank in 0..t.ranks {
                for bank in 0..t.banks() {
                    for row in 0..t.rows {
                        for column in 0..t.columns() {
                            let a = DramAddress { channel, rank, bank, row, column };
                            assert!(a.is_valid(&t));
                            assert!(seen.insert(a.flat_index(&t)), "duplicate flat index for {a}");
                        }
                    }
                }
            }
        }
        assert_eq!(seen.len() as u64, t.capacity_bytes() / t.transfer_bytes);
    }

    #[test]
    fn bank_group_derivation() {
        let t = topo();
        let a = DramAddress { channel: 0, rank: 0, bank: 13, row: 0, column: 0 };
        assert_eq!(a.bank_group(&t), 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        Topology::new(3, 2, 4, 4, 65536, 2048, 32);
    }

    #[test]
    fn invalid_address_detected() {
        let t = topo();
        let a = DramAddress { channel: 16, rank: 0, bank: 0, row: 0, column: 0 };
        assert!(!a.is_valid(&t));
    }

    #[test]
    fn display_is_nonempty() {
        let a = DramAddress { channel: 1, rank: 0, bank: 2, row: 3, column: 4 };
        assert!(!a.to_string().is_empty());
    }
}
