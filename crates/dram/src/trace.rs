//! Physical-address trace replay: map a PA stream through an
//! [`AddressMapper`] and schedule it on the
//! DRAM backend.

use crate::command::{Op, Request};
use crate::controller::DramSystem;
use crate::mapper::{AddressMapper, MapFault};
use crate::spec::DramSpec;
use crate::stats::SimResult;

/// One entry of a physical-address trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Physical byte address (interpreted at transfer granularity).
    pub pa: u64,
    /// Read or write.
    pub op: Op,
}

impl TraceEntry {
    /// A read of the transfer containing `pa`.
    pub fn read(pa: u64) -> Self {
        TraceEntry { pa, op: Op::Read }
    }
    /// A write of the transfer containing `pa`.
    pub fn write(pa: u64) -> Self {
        TraceEntry { pa, op: Op::Write }
    }
}

/// Options controlling trace replay.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceOptions {
    /// Cycles between successive request arrivals (0 = issue as fast as the
    /// queues accept, modelling a fully memory-bound requester).
    pub issue_interval: u64,
}

/// Replay `trace` through `mapper` on a fresh backend for `spec` and return
/// the schedule statistics.
///
/// Duplicate physical addresses are allowed (they model re-reads). The trace
/// order defines arrival order.
///
/// # Errors
///
/// Propagates the first [`MapFault`] the mapper raises (e.g. an unmapped
/// virtual address in a VA-level trace).
pub fn run_trace<M: AddressMapper>(
    spec: &DramSpec,
    mapper: &M,
    trace: impl IntoIterator<Item = TraceEntry>,
    opts: TraceOptions,
) -> Result<SimResult, MapFault> {
    let mut sys = DramSystem::new(spec);
    replay_on(&mut sys, mapper, trace, opts)
}

/// Like [`run_trace`], but on a caller-constructed backend — so the caller
/// can [`DramSystem::enable_logging`] first and
/// [`DramSystem::export_trace`] afterwards.
///
/// # Errors
///
/// Propagates the first [`MapFault`] the mapper raises; already-pushed
/// requests stay queued on `sys` in that case.
pub fn replay_on<M: AddressMapper>(
    sys: &mut DramSystem,
    mapper: &M,
    trace: impl IntoIterator<Item = TraceEntry>,
    opts: TraceOptions,
) -> Result<SimResult, MapFault> {
    let topology = sys.spec().topology;
    for (i, e) in trace.into_iter().enumerate() {
        let addr = mapper.map(e.pa)?;
        debug_assert!(
            addr.is_valid(&topology),
            "mapper produced out-of-range address {addr} for pa {:#x}",
            e.pa
        );
        let arrival = i as u64 * opts.issue_interval;
        sys.push(Request { addr, op: e.op, arrival });
    }
    Ok(sys.run())
}

/// Parse one line of a text trace: `R <addr>` or `W <addr>`, where the
/// address is decimal or `0x`-prefixed hex. Blank lines and lines starting
/// with `#` yield `Ok(None)`.
///
/// # Errors
///
/// Returns a description of the malformed line.
pub fn parse_trace_line(line: &str) -> std::result::Result<Option<TraceEntry>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let op = match parts.next() {
        Some("R") | Some("r") => Op::Read,
        Some("W") | Some("w") => Op::Write,
        Some(other) => return Err(format!("expected R or W, got {other:?}")),
        None => return Ok(None),
    };
    let addr = parts.next().ok_or_else(|| "missing address".to_string())?;
    let pa = if let Some(hex) = addr.strip_prefix("0x").or_else(|| addr.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map_err(|e| format!("bad hex address {addr:?}: {e}"))?
    } else {
        addr.parse::<u64>().map_err(|e| format!("bad address {addr:?}: {e}"))?
    };
    if parts.next().is_some() {
        return Err(format!("trailing tokens in line {line:?}"));
    }
    Ok(Some(TraceEntry { pa, op }))
}

/// Parse a whole text trace (one access per line; `#` comments allowed).
///
/// # Errors
///
/// Returns `(line number, description)` of the first malformed line.
pub fn parse_trace(text: &str) -> std::result::Result<Vec<TraceEntry>, (usize, String)> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if let Some(e) = parse_trace_line(line).map_err(|m| (i + 1, m))? {
            out.push(e);
        }
    }
    Ok(out)
}

/// Generate a sequential trace of `n` transfers starting at `base`
/// (convenience for bandwidth measurements).
pub fn sequential_trace(base: u64, n: u64, transfer_bytes: u64, op: Op) -> Vec<TraceEntry> {
    (0..n).map(|i| TraceEntry { pa: base + i * transfer_bytes, op }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::DramAddress;
    use crate::mapper::FnMapper;

    /// A simple conventional-style mapper for tests: channel and bank bits
    /// directly above the transfer offset, then column, rank, row.
    fn test_mapper(spec: &DramSpec) -> impl AddressMapper + '_ {
        let t = spec.topology;
        FnMapper(move |pa: u64| {
            let mut x = pa >> t.tx_bits();
            let mut take = |bits: u32| {
                let v = x & ((1 << bits) - 1);
                x >>= bits;
                v
            };
            DramAddress {
                channel: take(t.channel_bits()),
                bank: take(t.bank_bits()),
                column: take(t.column_bits()),
                rank: take(t.rank_bits()),
                row: take(t.row_bits()) % t.rows,
            }
        })
    }

    #[test]
    fn trace_parser_roundtrip() {
        let text = "# comment\nR 0x1000\nW 4096\n\nr 0X20\nw 7\n";
        let t = parse_trace(text).unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0], TraceEntry::read(0x1000));
        assert_eq!(t[1], TraceEntry::write(4096));
        assert_eq!(t[2], TraceEntry::read(0x20));
        assert_eq!(t[3], TraceEntry::write(7));
    }

    #[test]
    fn trace_parser_rejects_garbage() {
        assert!(parse_trace("R 0x10\nX 5\n").unwrap_err().0 == 2);
        assert!(parse_trace_line("R").is_err());
        assert!(parse_trace_line("R 0xZZ").is_err());
        assert!(parse_trace_line("R 1 2").is_err());
        assert_eq!(parse_trace_line("  ").unwrap(), None);
    }

    #[test]
    fn sequential_read_bandwidth_is_near_peak() {
        let spec = DramSpec::lpddr5_6400(64, 8 << 30); // 4 channels
        let mapper = test_mapper(&spec);
        let trace = sequential_trace(0, 16384, spec.topology.transfer_bytes, Op::Read);
        let res = run_trace(&spec, &mapper, trace, TraceOptions::default()).unwrap();
        let util = res.utilization(spec.peak_bandwidth_bytes_per_sec());
        assert!(util > 0.85, "sequential read utilization {util:.3} too low");
    }

    #[test]
    fn random_trace_is_slower_than_sequential() {
        let spec = DramSpec::lpddr5_6400(16, 256 << 20);
        let mapper = test_mapper(&spec);
        let n = 2048u64;
        let seq = sequential_trace(0, n, 32, Op::Read);
        // Deterministic pseudo-random PAs: large multiplicative stride.
        let cap = spec.capacity_bytes();
        let rnd: Vec<_> = (0..n)
            .map(|i| TraceEntry::read((i.wrapping_mul(0x9E3779B97F4A7C15) % cap) & !31))
            .collect();
        let s = run_trace(&spec, &mapper, seq, TraceOptions::default()).unwrap();
        let r = run_trace(&spec, &mapper, rnd, TraceOptions::default()).unwrap();
        assert!(
            r.bandwidth_bytes_per_sec < s.bandwidth_bytes_per_sec,
            "random ({:.2e}) should be slower than sequential ({:.2e})",
            r.bandwidth_bytes_per_sec,
            s.bandwidth_bytes_per_sec
        );
        assert!(r.stats.hit_rate() < s.stats.hit_rate());
    }

    #[test]
    fn replay_on_matches_run_trace_and_supports_logging() {
        let spec = DramSpec::lpddr5_6400(16, 256 << 20);
        let mapper = test_mapper(&spec);
        let trace = sequential_trace(0, 64, 32, Op::Read);
        let plain = run_trace(&spec, &mapper, trace.clone(), TraceOptions::default()).unwrap();
        let mut sys = DramSystem::new(&spec);
        sys.enable_logging();
        let logged = replay_on(&mut sys, &mapper, trace, TraceOptions::default()).unwrap();
        assert_eq!(plain, logged);
        let commands: usize = sys.logs().iter().map(|l| l.len()).sum();
        assert!(commands >= 64, "expected at least one command per access, got {commands}");
    }

    #[test]
    fn issue_interval_throttles_bandwidth() {
        let spec = DramSpec::lpddr5_6400(16, 256 << 20);
        let mapper = test_mapper(&spec);
        let trace = sequential_trace(0, 1024, 32, Op::Read);
        let fast = run_trace(&spec, &mapper, trace.clone(), TraceOptions::default()).unwrap();
        let slow = run_trace(&spec, &mapper, trace, TraceOptions { issue_interval: 16 }).unwrap();
        assert!(slow.elapsed_ns > 2.0 * fast.elapsed_ns);
    }
}
