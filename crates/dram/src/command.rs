//! DRAM commands and memory requests.

use serde::{Deserialize, Serialize};

use crate::addr::DramAddress;

/// Direction of a memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Column read (32 B transfer).
    Read,
    /// Column write (32 B transfer).
    Write,
}

/// A single-transfer memory request, already decoded to a device address.
///
/// PA-to-DA translation is performed *before* the request reaches the
/// backend (by the FACIL memory-controller frontend in `facil-core`), which
/// mirrors the paper's memory-controller architecture (Fig. 12): the frontend
/// translates, the backend schedules device commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Decoded target address.
    pub addr: DramAddress,
    /// Read or write.
    pub op: Op,
    /// Arrival cycle at the controller.
    pub arrival: u64,
}

impl Request {
    /// A read request arriving at cycle 0.
    pub fn read(addr: DramAddress) -> Self {
        Request { addr, op: Op::Read, arrival: 0 }
    }

    /// A write request arriving at cycle 0.
    pub fn write(addr: DramAddress) -> Self {
        Request { addr, op: Op::Write, arrival: 0 }
    }

    /// Same request with a different arrival cycle.
    pub fn at(mut self, arrival: u64) -> Self {
        self.arrival = arrival;
        self
    }
}

/// Device-level commands issued by the scheduler (for stats and debugging).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommandKind {
    /// Row activate.
    Act,
    /// Per-bank precharge.
    Pre,
    /// Column read.
    Rd,
    /// Column write.
    Wr,
    /// All-bank refresh.
    RefAb,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_constructors() {
        let a = DramAddress { channel: 0, rank: 1, bank: 2, row: 3, column: 4 };
        let r = Request::read(a).at(17);
        assert_eq!(r.op, Op::Read);
        assert_eq!(r.arrival, 17);
        assert_eq!(Request::write(a).op, Op::Write);
    }
}
