//! Property-based tests for the DRAM scheduler and functional memory.

use facil_dram::{
    ChannelSim, DramAddress, DramSpec, DramSystem, EngineKind, FnMapper, FunctionalMemory, Op,
    PagePolicy, Request, SchedConfig, Topology,
};
use proptest::prelude::*;

fn small_spec() -> DramSpec {
    DramSpec::lpddr5_6400(16, 256 << 20) // 1 channel
}

fn multi_spec() -> DramSpec {
    DramSpec::lpddr5_6400(64, 1 << 30) // 4 channels
}

/// Strategy for a random request to any channel of `multi_spec`, plus an
/// inter-arrival gap (accumulated by the caller so arrivals are globally
/// non-decreasing, as `DramSystem::push` requires).
fn arb_multi_request(spec: &DramSpec) -> impl Strategy<Value = (Request, u64)> {
    let t = spec.topology;
    (
        0..t.channels,
        0..t.ranks,
        0..t.banks(),
        0..t.rows.min(64),
        0..t.columns(),
        prop::bool::ANY,
        0u64..6,
    )
        .prop_map(move |(channel, rank, bank, row, column, is_read, gap)| {
            let addr = DramAddress { channel, rank, bank, row, column };
            let req = if is_read { Request::read(addr) } else { Request::write(addr) };
            (req, gap)
        })
}

/// Strategy for a random request to channel 0 of `small_spec`.
fn arb_request(spec: &DramSpec) -> impl Strategy<Value = Request> {
    let t = spec.topology;
    (
        0..t.ranks,
        0..t.banks(),
        0..t.rows.min(64), // keep the row space small so hits/conflicts occur
        0..t.columns(),
        prop::bool::ANY,
    )
        .prop_map(move |(rank, bank, row, column, is_read)| {
            let addr = DramAddress { channel: 0, rank, bank, row, column };
            if is_read {
                Request::read(addr)
            } else {
                Request::write(addr)
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every request stream completes, and the hit/miss/conflict counters
    /// partition the column accesses exactly.
    #[test]
    fn scheduler_completes_and_classifies(reqs in prop::collection::vec(arb_request(&small_spec()), 1..200)) {
        let spec = small_spec();
        let mut ch = ChannelSim::new(&spec);
        let n = reqs.len() as u64;
        let reads = reqs.iter().filter(|r| r.op == Op::Read).count() as u64;
        for r in reqs {
            ch.push(r);
        }
        let stats = ch.run();
        prop_assert_eq!(stats.reads, reads);
        prop_assert_eq!(stats.reads + stats.writes, n);
        prop_assert_eq!(stats.row_hits + stats.row_misses + stats.row_conflicts, n);
        // Every miss and conflict requires an activate.
        prop_assert!(stats.activates >= stats.row_misses.max(1).min(n));
        prop_assert_eq!(stats.activates, stats.row_misses + stats.row_conflicts);
        prop_assert_eq!(stats.precharges, stats.row_conflicts);
    }

    /// Elapsed time is bounded below by the pure data-bus occupancy and is
    /// finite (progress is always made).
    #[test]
    fn elapsed_time_lower_bound(reqs in prop::collection::vec(arb_request(&small_spec()), 1..200)) {
        let spec = small_spec();
        let mut ch = ChannelSim::new(&spec);
        let n = reqs.len() as u64;
        for r in reqs {
            ch.push(r);
        }
        let stats = ch.run();
        let data_cycles = n * spec.timing.burst_cycles;
        prop_assert!(stats.finish_cycle >= data_cycles);
        // Generous upper bound: every access a conflict with full tRC.
        let bound = n * (spec.timing.rc + spec.timing.cl + spec.timing.burst_cycles + spec.timing.wr)
            + spec.timing.rfc_ab * (stats.refreshes + 1);
        prop_assert!(stats.finish_cycle <= bound, "finish {} > bound {}", stats.finish_cycle, bound);
    }

    /// Functional memory: arbitrary (possibly unaligned, overlapping) writes
    /// followed by reads behave like a flat byte array.
    #[test]
    fn functional_memory_matches_flat_array(
        writes in prop::collection::vec((0u64..8000, prop::collection::vec(any::<u8>(), 1..100)), 1..20)
    ) {
        let t = Topology::new(2, 1, 2, 2, 4, 256, 32); // 8 KiB
        let mapper = FnMapper(move |pa: u64| {
            let mut x = pa >> t.tx_bits();
            let mut take = |bits: u32| { let v = x & ((1 << bits) - 1); x >>= bits; v };
            DramAddress {
                column: take(t.column_bits()),
                bank: take(t.bank_bits()),
                channel: take(t.channel_bits()),
                rank: take(t.rank_bits()),
                row: take(t.row_bits()),
            }
        });
        let cap = t.capacity_bytes() as usize;
        let mut mem = FunctionalMemory::new(t);
        let mut model = vec![0u8; cap];
        for (pa, data) in &writes {
            let pa = *pa as usize % (cap - data.len());
            mem.write_bytes(&mapper, pa as u64, data).unwrap();
            model[pa..pa + data.len()].copy_from_slice(data);
        }
        prop_assert_eq!(mem.read_bytes(&mapper, 0, cap).unwrap(), model);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Parallel multi-channel scheduling is invisible in the results: for
    /// any request stream, `run_with_threads(8)` produces exactly the
    /// `SimResult` (and the same per-channel command logs) as a serial
    /// `run_with_threads(1)`.
    #[test]
    fn parallel_run_is_bit_identical_to_serial(
        entries in prop::collection::vec(arb_multi_request(&multi_spec()), 1..200)
    ) {
        let spec = multi_spec();
        let mut serial = DramSystem::new(&spec);
        let mut parallel = DramSystem::new(&spec);
        serial.enable_logging();
        parallel.enable_logging();
        let mut arrival = 0u64;
        for (req, gap) in entries {
            arrival += gap;
            let req = req.at(arrival);
            serial.push(req);
            parallel.push(req);
        }
        let a = serial.run_with_threads(1);
        let b = parallel.run_with_threads(8);
        prop_assert_eq!(a, b);
        prop_assert_eq!(format!("{:?}", serial.logs()), format!("{:?}", parallel.logs()));
    }
}

/// Run `entries` through two [`DramSystem`]s that differ only in engine and
/// assert the [`facil_dram::SimResult`]s and per-channel command logs are
/// bit-identical. `workers` exercises the engine × thread-pool interaction.
fn assert_engines_identical(
    spec: &DramSpec,
    policy: PagePolicy,
    entries: &[(Request, u64)],
    workers: usize,
) -> Result<(), TestCaseError> {
    let mk = |engine| {
        let cfg = SchedConfig { page_policy: policy, engine, ..SchedConfig::default() };
        let mut sys = DramSystem::with_config(spec, cfg);
        sys.enable_logging();
        let mut arrival = 0u64;
        for (req, gap) in entries {
            arrival += gap;
            let mut req = req.at(arrival);
            req.addr.channel %= spec.topology.channels;
            sys.push(req);
        }
        sys
    };
    let mut stepped = mk(EngineKind::Stepped);
    let mut event = mk(EngineKind::Event);
    let a = stepped.run_with_threads(workers);
    let b = event.run_with_threads(workers);
    prop_assert_eq!(a, b);
    prop_assert_eq!(format!("{:?}", stepped.logs()), format!("{:?}", event.logs()));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The engine-split invariant: for any request stream, page policy,
    /// channel count, and `FACIL_THREADS`-style worker count, the next-event
    /// engine produces exactly the `SimResult` and per-channel command logs
    /// of the cycle-stepped reference.
    #[test]
    fn event_engine_is_bit_identical_to_stepped(
        entries in prop::collection::vec(arb_multi_request(&multi_spec()), 1..200),
        open_page in prop::bool::ANY,
        bus_idx in 0usize..3,
        eight_workers in prop::bool::ANY,
    ) {
        // 16/32/64-bit bus = 1/2/4 channels; requests are generated against
        // the 4-channel topology and folded onto the smaller ones.
        let spec = DramSpec::lpddr5_6400([16u64, 32, 64][bus_idx], 1 << 30);
        let workers = if eight_workers { 8 } else { 1 };
        let policy = if open_page { PagePolicy::Open } else { PagePolicy::Closed };
        assert_engines_identical(&spec, policy, &entries, workers)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same invariant under refresh pressure: tREFI shrunk to a few row
    /// cycles so streams cross many refresh deadlines (including deadlines
    /// inside long arrival gaps, the case a jumping engine is most likely
    /// to get wrong).
    #[test]
    fn refresh_heavy_streams_are_engine_invariant(
        entries in prop::collection::vec(arb_multi_request(&multi_spec()), 1..120),
        open_page in prop::bool::ANY,
        gap_idx in 0usize..3,
    ) {
        let gap_scale = [1u64, 64, 512][gap_idx];
        let mut spec = DramSpec::lpddr5_6400(32, 512 << 20); // 2 channels
        spec.timing.refi = 200; // ~30x the normal refresh pressure
        let policy = if open_page { PagePolicy::Open } else { PagePolicy::Closed };
        let entries: Vec<_> =
            entries.iter().map(|&(req, gap)| (req, gap * gap_scale)).collect();
        assert_engines_identical(&spec, policy, &entries, 1)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cross-check: every command stream the scheduler emits passes the
    /// independent JEDEC-legality verifier (a second implementation of the
    /// timing rules).
    #[test]
    fn scheduler_output_is_jedec_legal(reqs in prop::collection::vec(arb_request(&small_spec()), 1..150)) {
        let spec = small_spec();
        let mut ch = ChannelSim::new(&spec);
        ch.enable_logging();
        for r in reqs {
            ch.push(r);
        }
        ch.run();
        let log = ch.log().unwrap();
        let t = spec.topology;
        let violations = facil_dram::verify_log(log, &spec.timing, t.ranks, t.banks(), t.banks_per_group);
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Negative testing of the verifier itself: pulling any ACT/RD/WR/PRE of
    /// a legal log earlier by a large margin must produce a violation —
    /// i.e. the verifier actually checks something on realistic streams.
    #[test]
    fn verifier_catches_injected_violations(
        reqs in prop::collection::vec(arb_request(&small_spec()), 8..64),
        victim_frac in 0.0f64..1.0,
    ) {
        let spec = small_spec();
        let mut ch = ChannelSim::new(&spec);
        ch.enable_logging();
        for r in reqs {
            ch.push(r);
        }
        ch.run();
        let mut log = ch.log().unwrap().to_vec();
        let t = spec.topology;
        // Pick a victim command that is not the first and yank it to cycle 0.
        let idx = 1 + ((log.len() - 1) as f64 * victim_frac) as usize % (log.len() - 1);
        if log[idx].cycle == 0 {
            return Ok(());
        }
        log[idx].cycle = 0;
        let sorted = {
            let mut l = log.clone();
            l.sort_by_key(|c| c.cycle);
            l
        };
        let violations =
            facil_dram::verify_log(&sorted, &spec.timing, t.ranks, t.banks(), t.banks_per_group);
        prop_assert!(
            !violations.is_empty(),
            "moving command {idx} to cycle 0 must violate something"
        );
    }
}
