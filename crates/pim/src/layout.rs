//! Derives the PIM execution geometry of a placed matrix: how many tiles,
//! input segments and DRAM rows per bank a GEMV over it involves.

use facil_core::{MappingDecision, MatrixConfig, PimArch};
use facil_dram::Topology;
use serde::{Deserialize, Serialize};

/// Execution geometry of one matrix placed for PIM (paper Section II-C
/// terminology: chunks and tiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PimPlacement {
    /// PUs sharing one matrix row (1 unless column-partitioned, Fig. 10).
    pub partitions: u64,
    /// Matrix rows processed concurrently by one all-bank pass
    /// (= total PUs x chunk rows / partitions).
    pub rows_per_tile: u64,
    /// Number of tiles (all-bank passes over the full input).
    pub tiles: u64,
    /// Input segments per PU: how many chunk-column loads of the input
    /// vector one PU consumes (per tile).
    pub segments: u64,
    /// DRAM rows of weights one bank owns for this matrix in total.
    pub dram_rows_per_bank: u64,
    /// Total weight bytes (padded rows).
    pub weight_bytes: u64,
    /// Output elements produced per tile across all PUs (before partition
    /// reduction).
    pub partials_per_tile: u64,
}

impl PimPlacement {
    /// Compute the geometry for `matrix` under `decision` on `topo`/`arch`.
    ///
    /// # Panics
    ///
    /// Panics if the decision's partition factor exceeds the PU count.
    pub fn new(
        matrix: &MatrixConfig,
        decision: &MappingDecision,
        topo: &Topology,
        arch: &PimArch,
    ) -> Self {
        let total_pus = topo.total_banks();
        let p = decision.partitions;
        assert!(p <= total_pus, "cannot partition one row over more PUs than exist");
        let rows_per_tile = (total_pus / p) * arch.chunk_rows;
        let tiles = matrix.rows.div_ceil(rows_per_tile);
        // Bytes of one matrix row charged to one PU.
        let row_share = matrix.padded_row_bytes() / p;
        let segments = row_share.div_ceil(arch.chunk_row_bytes);
        let weight_bytes = matrix.padded_bytes();
        // One DRAM row stores `chunk_rows` chunk-rows (= one chunk).
        let dram_rows_per_bank =
            tiles * segments * arch.chunk_rows * arch.chunk_row_bytes / topo.row_bytes;
        PimPlacement {
            partitions: p,
            rows_per_tile,
            tiles,
            segments,
            dram_rows_per_bank,
            weight_bytes,
            partials_per_tile: rows_per_tile * p,
        }
    }

    /// Total partial-sum elements the SoC must reduce (0 when unpartitioned).
    pub fn reduction_elems(&self, matrix: &MatrixConfig) -> u64 {
        if self.partitions == 1 {
            0
        } else {
            matrix.rows * self.partitions
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facil_core::{select_mapping_2mb, DType};

    fn topo_small() -> Topology {
        // 4ch x 2rk x 16 banks = 128 PUs.
        Topology::new(4, 2, 4, 4, 16384, 2048, 32)
    }

    #[test]
    fn unpartitioned_geometry() {
        let t = topo_small();
        let arch = PimArch::aim(&t);
        let m = MatrixConfig::new(2048, 2048, DType::F16);
        let d = select_mapping_2mb(&m, t, &arch).unwrap();
        let p = PimPlacement::new(&m, &d, &t, &arch);
        assert_eq!(p.partitions, 1);
        assert_eq!(p.rows_per_tile, 128);
        assert_eq!(p.tiles, 16);
        assert_eq!(p.segments, 2); // 4 KB row / 2 KB chunk
                                   // 16 tiles x 2 segments = 32 DRAM rows per bank = 64 KB per bank;
                                   // 2048 rows x 4 KB / 128 banks = 64 KB. Consistent.
        assert_eq!(p.dram_rows_per_bank, 32);
        assert_eq!(p.reduction_elems(&m), 0);
    }

    #[test]
    fn partitioned_geometry() {
        // Jetson-like 512 PUs, 4096-col rows partition x2.
        let t = Topology::new(16, 2, 4, 4, 65536, 2048, 32);
        let arch = PimArch::aim(&t);
        let m = MatrixConfig::new(4096, 4096, DType::F16);
        let d = select_mapping_2mb(&m, t, &arch).unwrap();
        let p = PimPlacement::new(&m, &d, &t, &arch);
        assert_eq!(p.partitions, 2);
        assert_eq!(p.rows_per_tile, 256);
        assert_eq!(p.tiles, 16);
        assert_eq!(p.segments, 2); // half of the 8 KB row per PU
        assert_eq!(p.reduction_elems(&m), 8192);
        // Total weights divided evenly: 4096 rows x 8 KB / 512 banks = 64 KB
        // = 32 DRAM rows.
        assert_eq!(p.dram_rows_per_bank, 32);
    }

    #[test]
    fn hbm_pim_geometry_counts_chunk_rows() {
        let t = topo_small();
        let arch = PimArch::hbm_pim(&t);
        let m = MatrixConfig::new(4096, 1024, DType::F16);
        let d = select_mapping_2mb(&m, t, &arch).unwrap();
        let p = PimPlacement::new(&m, &d, &t, &arch);
        assert_eq!(p.partitions, 1);
        assert_eq!(p.rows_per_tile, 128 * 8, "8 chunk rows per bank per tile");
        assert_eq!(p.tiles, 4);
        assert_eq!(p.segments, 8); // 2 KB row / 256 B chunk rows
        assert_eq!(p.dram_rows_per_bank, 4 * 8 * 8 * 256 / 2048);
    }

    #[test]
    fn ragged_rows_round_up_tiles() {
        let t = topo_small();
        let arch = PimArch::aim(&t);
        let m = MatrixConfig::new(130, 2048, DType::F16); // 128 + 2
        let d = select_mapping_2mb(&m, t, &arch).unwrap();
        let p = PimPlacement::new(&m, &d, &t, &arch);
        assert_eq!(p.tiles, 2);
    }
}
