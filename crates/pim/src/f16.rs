//! Minimal IEEE-754 binary16 conversion helpers.
//!
//! The functional PIM engine stores fp16 weights in the byte-accurate DRAM
//! model and computes GEMV over them; these conversions avoid an external
//! half-precision dependency.

/// Convert an `f32` to its fp16 bit pattern (round-to-nearest-even).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;

    if exp == 0xFF {
        if mant == 0 {
            return sign | 0x7C00; // infinity
        }
        // NaN: keep the top 10 payload bits and force the quiet bit, the
        // standard narrow-on-NaN behavior (signaling NaNs come out quieted,
        // payloads that fit are preserved).
        return sign | 0x7C00 | 0x0200 | (mant >> 13) as u16;
    }
    // Re-bias: f32 exp-127 + 15.
    let new_exp = exp - 127 + 15;
    if new_exp >= 0x1F {
        return sign | 0x7C00; // overflow -> inf
    }
    if new_exp <= 0 {
        // Subnormal or zero.
        if new_exp < -10 {
            return sign;
        }
        let mant = mant | 0x0080_0000; // implicit leading 1
        let shift = (14 - new_exp) as u32;
        let half = 1u32 << (shift - 1);
        // Round to nearest, ties to even.
        let down = mant >> shift;
        let rem = mant & ((1 << shift) - 1);
        let r = if rem > half || (rem == half && down & 1 == 1) { down + 1 } else { down };
        return sign | r as u16;
    }
    // Normal: round mantissa from 23 to 10 bits.
    let down = mant >> 13;
    let rem = mant & 0x1FFF;
    let half = 0x1000;
    let mut m = down;
    let mut e = new_exp as u32;
    if rem > half || (rem == half && down & 1 == 1) {
        m += 1;
        if m == 0x400 {
            m = 0;
            e += 1;
            if e >= 0x1F {
                return sign | 0x7C00;
            }
        }
    }
    sign | ((e as u16) << 10) | m as u16
}

/// Convert an fp16 bit pattern to `f32`.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let exp = (h >> 10) & 0x1F;
    let mant = u32::from(h & 0x03FF);
    let bits = match exp {
        0 => {
            if mant == 0 {
                sign
            } else {
                // Subnormal (value = mant * 2^-24): normalize. `e` counts the
                // shifts needed to bring the leading 1 into the implicit-bit
                // position; the largest subnormal (mant 0x3FF) needs one
                // shift and lands at exponent 2^-15 - ulp territory.
                let mut e = 0i32;
                let mut m = mant;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                m &= 0x03FF;
                sign | (((127 - 15 + e + 1) as u32) << 23) | (m << 13)
            }
        }
        0x1F => sign | 0x7F80_0000 | (mant << 13),
        e => sign | ((u32::from(e) + 127 - 15) << 23) | (mant << 13),
    };
    f32::from_bits(bits)
}

/// Encode a slice of `f32` into little-endian fp16 bytes.
pub fn encode_f16_le(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 2);
    for v in values {
        out.extend_from_slice(&f32_to_f16_bits(*v).to_le_bytes());
    }
    out
}

/// Decode little-endian fp16 bytes into `f32` values.
///
/// # Panics
///
/// Panics if the byte length is odd.
pub fn decode_f16_le(bytes: &[u8]) -> Vec<f32> {
    assert!(bytes.len().is_multiple_of(2), "fp16 byte stream must have even length");
    bytes.chunks_exact(2).map(|c| f16_bits_to_f32(u16::from_le_bytes([c[0], c[1]]))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 1024.0, -0.25, 65504.0] {
            let h = f32_to_f16_bits(v);
            assert_eq!(f16_bits_to_f32(h), v, "value {v}");
        }
    }

    #[test]
    fn rounding_is_close() {
        for i in 0..1000 {
            let v = (i as f32 - 500.0) * 0.123;
            let back = f16_bits_to_f32(f32_to_f16_bits(v));
            let err = (back - v).abs();
            assert!(err <= v.abs() * 1e-3 + 1e-4, "v={v} back={back}");
        }
    }

    #[test]
    fn overflow_to_inf() {
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e6)), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(-1e6)), f32::NEG_INFINITY);
    }

    #[test]
    fn nan_preserved() {
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn subnormals_roundtrip() {
        let tiny = 5.96e-8f32; // smallest fp16 subnormal ~ 5.96e-8
        let back = f16_bits_to_f32(f32_to_f16_bits(tiny));
        assert!(back > 0.0 && back < 1e-7);
    }

    /// Arithmetic reference for decoding an fp16 bit pattern, computed in
    /// f64 (exact for every binary16 value) and narrowed at the end.
    fn reference_decode(h: u16) -> f32 {
        let sign = if h & 0x8000 != 0 { -1.0f64 } else { 1.0 };
        let exp = (h >> 10) & 0x1F;
        let mant = f64::from(h & 0x03FF);
        match exp {
            0 => (sign * mant * (-24f64).exp2()) as f32,
            0x1F => {
                if mant == 0.0 {
                    (sign * f64::INFINITY) as f32
                } else {
                    f32::NAN
                }
            }
            e => (sign * (1.0 + mant / 1024.0) * f64::from(i32::from(e) - 15).exp2()) as f32,
        }
    }

    #[test]
    fn decode_matches_arithmetic_reference_exhaustively() {
        // Every one of the 65536 bit patterns, including all subnormals:
        // a wrong normalization start (the bug this pins down halved every
        // subnormal) fails here immediately.
        for h in 0..=u16::MAX {
            let got = f16_bits_to_f32(h);
            let want = reference_decode(h);
            if want.is_nan() {
                assert!(got.is_nan(), "h={h:#06x}: got {got}, want NaN");
            } else {
                assert_eq!(got.to_bits(), want.to_bits(), "h={h:#06x}: got {got}, want {want}");
            }
        }
    }

    #[test]
    fn roundtrip_is_identity_for_every_pattern() {
        // f16 -> f32 is exact, so encoding back must reproduce the pattern:
        // exactly for every non-NaN, and up to the quiet bit for NaNs
        // (signaling payloads come back quieted, nothing else moves).
        for h in 0..=u16::MAX {
            let back = f32_to_f16_bits(f16_bits_to_f32(h));
            let exp = (h >> 10) & 0x1F;
            let is_nan = exp == 0x1F && h & 0x03FF != 0;
            if is_nan {
                assert_eq!(back, h | 0x0200, "NaN payload must survive up to quieting, h={h:#06x}");
            } else {
                assert_eq!(back, h, "h={h:#06x}");
            }
        }
    }

    #[test]
    fn negative_zero_is_preserved() {
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f16_bits_to_f32(0x8000).to_bits(), (-0.0f32).to_bits());
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
    }

    #[test]
    fn nan_payload_top_bits_survive() {
        // An f32 quiet NaN whose payload sits in the top 10 mantissa bits.
        let payload = 0x2A5u32; // includes the quiet bit (0x200)
        let nan = f32::from_bits(0x7F80_0000 | (payload << 13));
        assert_eq!(f32_to_f16_bits(nan), 0x7C00 | payload as u16);
        // A signaling-style f32 NaN with an all-low payload still narrows to
        // *a* NaN (quiet bit forced), never to infinity.
        let low_payload_nan = f32::from_bits(0x7F80_0001);
        assert_eq!(f32_to_f16_bits(low_payload_nan), 0x7E00);
        let neg_nan = f32::from_bits(0xFF80_0001);
        assert_eq!(f32_to_f16_bits(neg_nan), 0xFE00);
    }

    #[test]
    fn round_to_nearest_even_ties() {
        // 1 + 2^-11 is exactly halfway between 1.0 (0x3C00) and 1.0 + 2^-10
        // (0x3C01): the tie must go to the even mantissa (0x3C00).
        assert_eq!(f32_to_f16_bits(1.0 + 2f32.powi(-11)), 0x3C00);
        // 1 + 3*2^-11 is halfway between 0x3C01 and 0x3C02: even is 0x3C02.
        assert_eq!(f32_to_f16_bits(1.0 + 3.0 * 2f32.powi(-11)), 0x3C02);
        // Just above/below the midpoints round to nearest, not to even.
        assert_eq!(f32_to_f16_bits(1.0 + 2f32.powi(-11) + 2f32.powi(-20)), 0x3C01);
        assert_eq!(f32_to_f16_bits(1.0 + 2f32.powi(-11) - 2f32.powi(-20)), 0x3C00);
    }

    #[test]
    fn round_to_nearest_even_ties_subnormal() {
        // 2^-25 is halfway between 0 and the smallest subnormal 2^-24:
        // ties-to-even goes to 0 (even).
        assert_eq!(f32_to_f16_bits(2f32.powi(-25)), 0x0000);
        // 3 * 2^-25 is halfway between 1 and 2 ulps: even is 2 (0x0002).
        assert_eq!(f32_to_f16_bits(3.0 * 2f32.powi(-25)), 0x0002);
        // Just above the dead zone rounds up to the smallest subnormal.
        assert_eq!(f32_to_f16_bits(2f32.powi(-25) * 1.0001), 0x0001);
        // Negative side mirrors with the sign bit.
        assert_eq!(f32_to_f16_bits(-3.0 * 2f32.powi(-25)), 0x8002);
        // Largest subnormal and the subnormal->normal boundary.
        assert_eq!(f32_to_f16_bits(1023.0 * 2f32.powi(-24)), 0x03FF);
        assert_eq!(f32_to_f16_bits(2f32.powi(-14)), 0x0400);
        // A subnormal tie that carries into the normal range: 2^-14 - 2^-25
        // is halfway between 0x03FF and 0x0400; even is 0x0400.
        assert_eq!(f32_to_f16_bits(2f32.powi(-14) - 2f32.powi(-25)), 0x0400);
    }

    #[test]
    fn rounding_overflow_to_infinity() {
        // Largest finite f16 is 65504; the f32 midpoint to the next step
        // (65520) rounds to even => 0x400 mantissa carry => infinity.
        assert_eq!(f32_to_f16_bits(65504.0), 0x7BFF);
        assert_eq!(f32_to_f16_bits(65520.0), 0x7C00);
        assert_eq!(f32_to_f16_bits(65519.99), 0x7BFF);
    }

    #[test]
    fn slice_codec() {
        let vals = vec![1.0f32, -2.5, 0.125, 7.0];
        let bytes = encode_f16_le(&vals);
        assert_eq!(bytes.len(), 8);
        assert_eq!(decode_f16_le(&bytes), vals);
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn odd_bytes_panic() {
        decode_f16_le(&[1, 2, 3]);
    }
}
