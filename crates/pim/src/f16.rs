//! Minimal IEEE-754 binary16 conversion helpers.
//!
//! The functional PIM engine stores fp16 weights in the byte-accurate DRAM
//! model and computes GEMV over them; these conversions avoid an external
//! half-precision dependency.

/// Convert an `f32` to its fp16 bit pattern (round-to-nearest-even).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf / NaN.
        let m = if mant != 0 { 0x0200 } else { 0 };
        return sign | 0x7C00 | m;
    }
    // Re-bias: f32 exp-127 + 15.
    let new_exp = exp - 127 + 15;
    if new_exp >= 0x1F {
        return sign | 0x7C00; // overflow -> inf
    }
    if new_exp <= 0 {
        // Subnormal or zero.
        if new_exp < -10 {
            return sign;
        }
        let mant = mant | 0x0080_0000; // implicit leading 1
        let shift = (14 - new_exp) as u32;
        let half = 1u32 << (shift - 1);
        // Round to nearest, ties to even.
        let down = mant >> shift;
        let rem = mant & ((1 << shift) - 1);
        let r = if rem > half || (rem == half && down & 1 == 1) { down + 1 } else { down };
        return sign | r as u16;
    }
    // Normal: round mantissa from 23 to 10 bits.
    let down = mant >> 13;
    let rem = mant & 0x1FFF;
    let half = 0x1000;
    let mut m = down;
    let mut e = new_exp as u32;
    if rem > half || (rem == half && down & 1 == 1) {
        m += 1;
        if m == 0x400 {
            m = 0;
            e += 1;
            if e >= 0x1F {
                return sign | 0x7C00;
            }
        }
    }
    sign | ((e as u16) << 10) | m as u16
}

/// Convert an fp16 bit pattern to `f32`.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let exp = (h >> 10) & 0x1F;
    let mant = u32::from(h & 0x03FF);
    let bits = match exp {
        0 => {
            if mant == 0 {
                sign
            } else {
                // Subnormal: normalize.
                let mut e = -1i32;
                let mut m = mant;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                m &= 0x03FF;
                sign | (((127 - 15 + e + 1) as u32) << 23) | (m << 13)
            }
        }
        0x1F => sign | 0x7F80_0000 | (mant << 13),
        e => sign | ((u32::from(e) + 127 - 15) << 23) | (mant << 13),
    };
    f32::from_bits(bits)
}

/// Encode a slice of `f32` into little-endian fp16 bytes.
pub fn encode_f16_le(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 2);
    for v in values {
        out.extend_from_slice(&f32_to_f16_bits(*v).to_le_bytes());
    }
    out
}

/// Decode little-endian fp16 bytes into `f32` values.
///
/// # Panics
///
/// Panics if the byte length is odd.
pub fn decode_f16_le(bytes: &[u8]) -> Vec<f32> {
    assert!(bytes.len().is_multiple_of(2), "fp16 byte stream must have even length");
    bytes.chunks_exact(2).map(|c| f16_bits_to_f32(u16::from_le_bytes([c[0], c[1]]))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 1024.0, -0.25, 65504.0] {
            let h = f32_to_f16_bits(v);
            assert_eq!(f16_bits_to_f32(h), v, "value {v}");
        }
    }

    #[test]
    fn rounding_is_close() {
        for i in 0..1000 {
            let v = (i as f32 - 500.0) * 0.123;
            let back = f16_bits_to_f32(f32_to_f16_bits(v));
            let err = (back - v).abs();
            assert!(err <= v.abs() * 1e-3 + 1e-4, "v={v} back={back}");
        }
    }

    #[test]
    fn overflow_to_inf() {
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e6)), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(-1e6)), f32::NEG_INFINITY);
    }

    #[test]
    fn nan_preserved() {
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn subnormals_roundtrip() {
        let tiny = 5.96e-8f32; // smallest fp16 subnormal ~ 5.96e-8
        let back = f16_bits_to_f32(f32_to_f16_bits(tiny));
        assert!(back > 0.0 && back < 1e-7);
    }

    #[test]
    fn slice_codec() {
        let vals = vec![1.0f32, -2.5, 0.125, 7.0];
        let bytes = encode_f16_le(&vals);
        assert_eq!(bytes.len(), 8);
        assert_eq!(decode_f16_le(&bytes), vals);
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn odd_bytes_panic() {
        decode_f16_le(&[1, 2, 3]);
    }
}
