//! # facil-pim
//!
//! AiM-style near-bank PIM execution engine for the FACIL (HPCA 2025)
//! reproduction — the substrate the paper takes from the NeuPIMs/DRAMsim
//! simulator stack, rebuilt in Rust:
//!
//! * [`layout::PimPlacement`] — chunk/tile geometry of a placed matrix
//!   (paper Section II-C);
//! * [`gemv::PimEngine`] — command-level timing of all-bank
//!   `ACT-AB / MAC-AB / PRE-AB` GEMV and GEMM streams over LPDDR5 timing,
//!   including global-buffer loads, output drains and partition reductions;
//! * [`functional`] — data-value PIM execution over the byte-accurate DRAM
//!   model, proving that SoC-written row-major weights compute correctly
//!   without re-layout;
//! * [`commands::CommandSequence`] — the same all-bank stream as a validated,
//!   *replayable* structure (waves, bank tasks, global-buffer slices) that
//!   `facil-fidelity` executes functionally and the verifylog checker
//!   validates for JEDEC legality;
//! * [`mod@f16`] — minimal fp16 codec used by the functional path.
//!
//! ```
//! use facil_core::{DType, FacilSystem, MatrixConfig, PimArch};
//! use facil_dram::DramSpec;
//! use facil_pim::PimEngine;
//!
//! # fn main() -> Result<(), facil_core::FacilError> {
//! let spec = DramSpec::lpddr5_6400(256, 64 << 30); // Jetson AGX Orin
//! let arch = PimArch::aim(&spec.topology);
//! let mut sys = FacilSystem::new(spec.clone(), arch);
//! let w = sys.pimalloc(MatrixConfig::new(4096, 4096, DType::F16))?;
//!
//! let engine = PimEngine::new(spec, arch);
//! let t = engine.gemv(&w.matrix, &w.decision);
//! assert!(t.internal_bw > 1e12); // multi-TB/s internal bandwidth
//! # Ok(())
//! # }
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod commands;
pub mod f16;
pub mod functional;
pub mod gemv;
pub mod layout;

pub use commands::{BankTask, ChunkRowTask, CommandSequence, GbSlice, PimCommand, Wave};
pub use functional::{load_matrix, pim_gemv, store_matrix};
pub use gemv::{PimEngine, PimOpTiming, PimTimingConfig};
pub use layout::PimPlacement;
