//! Replayable all-bank command sequence of one PIM GEMV.
//!
//! [`gemv::PimEngine`](crate::gemv::PimEngine) *times* the all-bank stream;
//! this module makes the same stream *replayable*: [`CommandSequence::trace`]
//! walks a placed matrix chunk by chunk through the page table and mapping
//! scheme, validates every placement invariant the all-bank hardware relies
//! on, and records the per-wave structure — which bank MACs which matrix row
//! against which global-buffer slice in which DRAM row. A functional
//! interpreter (`facil-fidelity`) executes the sequence over a byte-accurate
//! [`facil_dram::CellStore`]; [`CommandSequence::to_streams`] lowers it to
//! the exact [`facil_dram::PimStream`]s the timing model simulates, so one
//! JEDEC-legality checker ([`facil_dram::verify_allbank_log`]) covers both.
//!
//! One *wave* is one all-bank pass: `GB-load* → ACT-AB → MAC-AB* → PRE-AB`
//! on every rank that owns weights for it, all banks in lock-step on one
//! broadcast row address. Waves are ordered tile-major, segment-ascending —
//! the same order [`functional::pim_gemv`](crate::functional::pim_gemv)
//! accumulates in, which is what makes the replay bit-exact.

use std::collections::{BTreeMap, BTreeSet};

use facil_core::{FacilError, FacilSystem, MatrixConfig, PimAllocation};
use facil_dram::{PimStream, Topology};
use serde::{Deserialize, Serialize};

use crate::layout::PimPlacement;

/// One global-buffer slice staged for a wave: the input-vector span the PUs
/// of partition `partition` consume during that wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GbSlice {
    /// Partition index (0 when the row is unpartitioned).
    pub partition: u64,
    /// First input-vector element of the slice.
    pub input_elem0: u64,
    /// Live elements in the slice (< chunk elements only for a ragged tail).
    pub elems: u64,
}

/// One chunk row a bank MACs during a wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkRowTask {
    /// Matrix row this chunk row belongs to.
    pub matrix_row: u64,
    /// Partition index of the chunk (which partial sum it feeds).
    pub partition: u64,
    /// First matrix column the chunk covers.
    pub col0: u64,
    /// Live elements (< chunk elements only for a ragged tail).
    pub elems: u64,
    /// Chunk-row slot within the DRAM row (always 0 for AiM; 0..8 for
    /// HBM-PIM, selecting the PU output register).
    pub slot: u64,
    /// First DRAM column of the chunk row.
    pub column0: u64,
}

/// All chunk rows one bank processes during a wave.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankTask {
    /// Channel of the bank.
    pub channel: u64,
    /// Rank of the bank.
    pub rank: u64,
    /// Bank index within the rank.
    pub bank: u64,
    /// Chunk rows, slot-ascending.
    pub rows: Vec<ChunkRowTask>,
}

/// One all-bank pass: every listed bank processes one DRAM row against the
/// staged global-buffer slices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Wave {
    /// Tile index (PU output registers accumulate across the waves of one
    /// tile and drain between tiles).
    pub tile: u64,
    /// Input segment index within the tile.
    pub segment: u64,
    /// The DRAM row every bank activates (all-bank ACT broadcasts one row
    /// address).
    pub dram_row: u64,
    /// Global-buffer slices staged for this wave, partition-ascending.
    pub gb: Vec<GbSlice>,
    /// Per-bank work, (channel, rank, bank)-ascending.
    pub tasks: Vec<BankTask>,
}

/// One command of the functional replay stream. The kinds mirror
/// [`facil_dram::AllBankCommandKind`]; here they carry the operands a
/// functional interpreter needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PimCommand {
    /// Load one transfer of the input vector into a rank's global buffer.
    GbLoad {
        /// Target channel.
        channel: u64,
        /// Target rank.
        rank: u64,
        /// Partition whose slice this transfer fills.
        partition: u64,
        /// First input-vector element of the transfer.
        input_elem0: u64,
        /// Live elements in the transfer (0 for the zero-padded tail).
        elems: u64,
    },
    /// Activate one DRAM row in every bank of the rank.
    ActAb {
        /// Target channel.
        channel: u64,
        /// Target rank.
        rank: u64,
        /// Broadcast row address.
        dram_row: u64,
    },
    /// One MAC beat: every bank multiplies the transfer at `column` of its
    /// open row against the matching global-buffer elements.
    MacAb {
        /// Target channel.
        channel: u64,
        /// Target rank.
        rank: u64,
        /// DRAM column of the beat.
        column: u64,
    },
    /// Precharge the open row in every bank of the rank.
    PreAb {
        /// Target channel.
        channel: u64,
        /// Target rank.
        rank: u64,
    },
}

/// The fully validated, replayable all-bank command sequence of one GEMV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommandSequence {
    topo: Topology,
    matrix: MatrixConfig,
    placement: PimPlacement,
    /// Transfers per chunk row.
    chunk_tx: u64,
    /// fp16 elements per chunk row.
    chunk_elems: u64,
    map_id: u8,
    waves: Vec<Wave>,
}

struct WaveBuild {
    dram_row: Option<u64>,
    /// (channel, rank, bank) -> slot-keyed chunk rows.
    tasks: BTreeMap<(u64, u64, u64), BTreeMap<u64, ChunkRowTask>>,
    /// Partitions present -> live elements of their slice.
    slices: BTreeMap<u64, u64>,
}

impl CommandSequence {
    /// Walk `alloc`'s matrix chunk by chunk through the page table and the
    /// allocation's mapping scheme, validating the all-bank invariants, and
    /// build the wave-ordered command sequence.
    ///
    /// # Errors
    ///
    /// * [`FacilError::InvalidMapping`] if the placement violates an
    ///   all-bank invariant: a chunk straddling banks or DRAM rows or
    ///   misaligned within a row, a wave needing more than one broadcast row
    ///   address, a chunk outside the partition range, or a PU output
    ///   register that would have to migrate between banks mid-tile (the
    ///   bank-hash + MapID > 0 case — accumulation would be lost);
    /// * [`FacilError::NotMapped`] if the allocation's VA range is no longer
    ///   mapped.
    pub fn trace(sys: &FacilSystem, alloc: &PimAllocation) -> facil_core::Result<Self> {
        let topo = sys.spec().topology;
        let arch = *sys.arch();
        let m = alloc.matrix;
        let d = &alloc.decision;
        if m.dtype.bytes() != 2 {
            return Err(FacilError::InvalidMapping(
                "functional replay models 16-bit weights".into(),
            ));
        }
        if arch.chunk_rows > 1 && d.partitions > 1 {
            return Err(FacilError::InvalidMapping(
                "multi-row chunks cannot be column-partitioned".into(),
            ));
        }
        let placement = PimPlacement::new(&m, d, &topo, &arch);
        let chunk_elems = arch.chunk_row_bytes / 2;
        let chunk_tx = arch.chunk_row_bytes / topo.transfer_bytes;
        let tx = topo.transfer_bytes;
        let map_id = d.map_id.0;
        let seg_mask = (1u64 << map_id) - 1;
        let page_table = sys.page_table();
        let scheme = &d.scheme;

        let mut waves: BTreeMap<(u64, u64), WaveBuild> = BTreeMap::new();
        // The register binding must be a *bijection* within a tile: each PU
        // output register (tile, flat bank, slot) accumulates exactly one
        // (matrix row, partition), and each (matrix row, partition)
        // accumulates in exactly one register. Both directions are checked.
        let mut registers: BTreeMap<(u64, u64, u64), (u64, u64)> = BTreeMap::new();
        let mut reg_of: BTreeMap<(u64, u64, u64), (u64, u64)> = BTreeMap::new();

        for r in 0..m.rows {
            let tile = r / placement.rows_per_tile;
            for j in 0..m.cols.div_ceil(chunk_elems) {
                let col0 = j * chunk_elems;
                let elems = chunk_elems.min(m.cols - col0);
                let segment = j & seg_mask;
                let partition = j >> map_id;
                if partition >= d.partitions {
                    return Err(FacilError::InvalidMapping(format!(
                        "chunk {j} of row {r} falls outside the {} partitions",
                        d.partitions
                    )));
                }
                let pa = page_table.translate(alloc.element_va(r, col0))?.pa;
                let first = scheme.map_pa(pa);
                if !first.column.is_multiple_of(chunk_tx) {
                    return Err(FacilError::InvalidMapping(format!(
                        "chunk {j} of row {r} is not chunk-row aligned (column {})",
                        first.column
                    )));
                }
                for t in 1..(elems * 2).div_ceil(tx) {
                    let da = scheme.map_pa(pa + t * tx);
                    if (da.channel, da.rank, da.bank, da.row)
                        != (first.channel, first.rank, first.bank, first.row)
                        || da.column != first.column + t
                    {
                        return Err(FacilError::InvalidMapping(format!(
                            "chunk {j} of row {r} is not contiguous in one DRAM row of one bank"
                        )));
                    }
                }
                let slot = first.column >> arch.chunk_col_bits(&topo);
                let flat = (first.channel * topo.ranks + first.rank) * topo.banks() + first.bank;
                match registers.insert((tile, flat, slot), (r, partition)) {
                    Some(prev) if prev != (r, partition) => {
                        return Err(FacilError::InvalidMapping(format!(
                            "PU register (bank {flat}, slot {slot}) of tile {tile} is not \
                             bank-stable: rows {}/{r} both accumulate there (a bank hash with \
                             MapID > 0 moves chunks between banks mid-tile)",
                            prev.0
                        )));
                    }
                    _ => {}
                }
                match reg_of.insert((tile, r, partition), (flat, slot)) {
                    Some(prev) if prev != (flat, slot) => {
                        return Err(FacilError::InvalidMapping(format!(
                            "row {r} partition {partition} of tile {tile} is not bank-stable: \
                             its chunks land in registers (bank {}, slot {}) and (bank {flat}, \
                             slot {slot}) — the PU accumulator cannot migrate between banks \
                             mid-tile",
                            prev.0, prev.1
                        )));
                    }
                    _ => {}
                }
                let wave = waves.entry((tile, segment)).or_insert_with(|| WaveBuild {
                    dram_row: None,
                    tasks: BTreeMap::new(),
                    slices: BTreeMap::new(),
                });
                match wave.dram_row {
                    None => wave.dram_row = Some(first.row),
                    Some(row) if row != first.row => {
                        return Err(FacilError::InvalidMapping(format!(
                            "wave (tile {tile}, segment {segment}) needs rows {row} and {} — \
                             all-bank ACT broadcasts one row address",
                            first.row
                        )));
                    }
                    Some(_) => {}
                }
                wave.slices.entry(partition).or_insert(elems);
                let task = ChunkRowTask {
                    matrix_row: r,
                    partition,
                    col0,
                    elems,
                    slot,
                    column0: first.column,
                };
                wave.tasks
                    .entry((first.channel, first.rank, first.bank))
                    .or_default()
                    .insert(slot, task);
            }
        }

        let waves = waves
            .into_iter()
            .map(|((tile, segment), b)| Wave {
                tile,
                segment,
                // Every wave got at least one chunk before landing here.
                dram_row: b.dram_row.unwrap_or(0),
                gb: b
                    .slices
                    .into_iter()
                    .map(|(partition, elems)| GbSlice {
                        partition,
                        input_elem0: ((partition << map_id) | segment) * chunk_elems,
                        elems,
                    })
                    .collect(),
                tasks: b
                    .tasks
                    .into_iter()
                    .map(|((channel, rank, bank), rows)| BankTask {
                        channel,
                        rank,
                        bank,
                        rows: rows.into_values().collect(),
                    })
                    .collect(),
            })
            .collect();
        Ok(CommandSequence { topo, matrix: m, placement, chunk_tx, chunk_elems, map_id, waves })
    }

    /// The DRAM topology the sequence was traced against.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The matrix the sequence computes over.
    pub fn matrix(&self) -> &MatrixConfig {
        &self.matrix
    }

    /// The placement geometry.
    pub fn placement(&self) -> &PimPlacement {
        &self.placement
    }

    /// fp16 elements per chunk row.
    pub fn chunk_elems(&self) -> u64 {
        self.chunk_elems
    }

    /// The waves, tile-major and segment-ascending — replay order.
    pub fn waves(&self) -> &[Wave] {
        &self.waves
    }

    /// The commands of one wave, grouped per (channel, rank):
    /// `GB-load* → ACT-AB → MAC-AB* → PRE-AB`.
    pub fn wave_commands(&self, wave: &Wave) -> Vec<PimCommand> {
        let mut out = Vec::new();
        let elems_per_tx = self.topo.transfer_bytes / 2;
        let mut rank_parts: BTreeMap<(u64, u64), BTreeSet<u64>> = BTreeMap::new();
        for t in &wave.tasks {
            let parts = rank_parts.entry((t.channel, t.rank)).or_default();
            for row in &t.rows {
                parts.insert(row.partition);
            }
        }
        for ((channel, rank), parts) in rank_parts {
            for partition in parts {
                // Trace construction put a slice there for every partition a
                // task references.
                let Some(slice) = wave.gb.iter().find(|s| s.partition == partition) else {
                    continue;
                };
                for t in 0..self.chunk_tx {
                    let off = t * elems_per_tx;
                    out.push(PimCommand::GbLoad {
                        channel,
                        rank,
                        partition,
                        input_elem0: slice.input_elem0 + off,
                        elems: elems_per_tx.min(slice.elems.saturating_sub(off)),
                    });
                }
            }
            out.push(PimCommand::ActAb { channel, rank, dram_row: wave.dram_row });
            for column in 0..self.topo.columns() {
                out.push(PimCommand::MacAb { channel, rank, column });
            }
            out.push(PimCommand::PreAb { channel, rank });
        }
        out
    }

    /// The full replayable command stream, wave by wave.
    pub fn commands(&self) -> impl Iterator<Item = PimCommand> + '_ {
        self.waves.iter().flat_map(move |w| self.wave_commands(w))
    }

    /// Lower the sequence to the per-rank [`PimStream`]s of one channel —
    /// the same shape [`crate::PimEngine::gemv_simulated_cycles`] feeds to
    /// [`facil_dram::run_allbank`], so the timing simulation and the
    /// JEDEC-legality checker run off this one traced stream.
    ///
    /// Ranks with no work on `channel` are omitted.
    pub fn to_streams(
        &self,
        channel: u64,
        mac_interval: u64,
        double_buffer: bool,
    ) -> Vec<PimStream> {
        let mut per_rank: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for w in &self.waves {
            let mut parts: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
            for t in w.tasks.iter().filter(|t| t.channel == channel) {
                let set = parts.entry(t.rank).or_default();
                for row in &t.rows {
                    set.insert(row.partition);
                }
            }
            for (rank, set) in parts {
                let e = per_rank.entry(rank).or_insert((0, 0));
                e.0 += 1;
                e.1 = e.1.max(set.len() as u64 * self.chunk_tx);
            }
        }
        per_rank
            .into_iter()
            .map(|(rank, (rows, gb_cmds_per_row))| PimStream {
                rank,
                rows,
                gb_cmds_per_row,
                macs_per_row: self.topo.columns(),
                mac_interval,
                double_buffer,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facil_core::{
        decision_with_map_id, DType, MappingDecision, MatrixConfig, PimArch, HUGE_PAGE_BITS,
    };
    use facil_dram::DramSpec;

    fn iphone() -> FacilSystem {
        let spec = DramSpec::lpddr5_6400(64, 8 << 30);
        let arch = PimArch::aim(&spec.topology);
        FacilSystem::new(spec, arch)
    }

    #[test]
    fn trace_matches_placement_geometry() {
        let mut sys = iphone();
        let topo = sys.spec().topology;
        let m = MatrixConfig::new(2 * topo.total_banks(), 2048, DType::F16);
        let alloc = sys.pimalloc(m).unwrap();
        let seq = CommandSequence::trace(&sys, &alloc).unwrap();
        let p = seq.placement();
        assert_eq!(p.partitions, 1);
        assert_eq!(seq.waves().len() as u64, p.tiles * p.segments);
        for w in seq.waves() {
            // Unpartitioned AiM: every bank MACs exactly one chunk row.
            assert_eq!(w.tasks.len() as u64, topo.total_banks());
            assert_eq!(w.gb.len(), 1);
            assert_eq!(w.gb[0].elems, seq.chunk_elems());
            for t in &w.tasks {
                assert_eq!(t.rows.len(), 1);
                assert_eq!(t.rows[0].slot, 0);
                assert_eq!(t.rows[0].col0, w.gb[0].input_elem0);
            }
        }
        // Register bindings never repeat: rows * partitions distinct tasks.
        let tasks: u64 =
            seq.waves().iter().flat_map(|w| &w.tasks).map(|t| t.rows.len() as u64).sum();
        assert_eq!(tasks, m.rows * m.cols.div_ceil(seq.chunk_elems()));
    }

    #[test]
    fn streams_match_timing_model_shape() {
        // Full tiles, unpartitioned: the lowered streams must be exactly
        // what gemv_simulated_cycles constructs from the placement.
        let spec = DramSpec::lpddr5_6400(16, 1 << 30); // one channel
        let arch = PimArch::aim(&spec.topology);
        let topo = spec.topology;
        let mut sys = FacilSystem::new(spec.clone(), arch);
        let m = MatrixConfig::new(2 * topo.total_banks(), 2048, DType::F16);
        let alloc = sys.pimalloc(m).unwrap();
        let seq = CommandSequence::trace(&sys, &alloc).unwrap();
        let placement = PimPlacement::new(&m, &alloc.decision, &topo, &arch);
        let want: Vec<PimStream> = (0..topo.ranks)
            .map(|rank| PimStream {
                rank,
                rows: placement.dram_rows_per_bank,
                gb_cmds_per_row: arch.chunk_row_bytes / topo.transfer_bytes,
                macs_per_row: topo.columns(),
                mac_interval: 2,
                double_buffer: true,
            })
            .collect();
        assert_eq!(seq.to_streams(0, 2, true), want);
        // And the traced streams are JEDEC-legal under the shared checker.
        let streams = seq.to_streams(0, 2, true);
        let (_, log) = facil_dram::run_allbank_logged(&spec, &streams);
        let violations = facil_dram::verify_allbank_log(&log, &spec.timing, &streams);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn command_counts_match_stream_shape() {
        let mut sys = iphone();
        let topo = sys.spec().topology;
        let m = MatrixConfig::new(topo.total_banks(), 2048, DType::F16);
        let alloc = sys.pimalloc(m).unwrap();
        let seq = CommandSequence::trace(&sys, &alloc).unwrap();
        let ranks_per_wave = topo.channels * topo.ranks;
        let waves = seq.waves().len() as u64;
        let gb = seq.commands().filter(|c| matches!(c, PimCommand::GbLoad { .. })).count() as u64;
        let macs = seq.commands().filter(|c| matches!(c, PimCommand::MacAb { .. })).count() as u64;
        let acts = seq.commands().filter(|c| matches!(c, PimCommand::ActAb { .. })).count() as u64;
        assert_eq!(gb, waves * ranks_per_wave * (sys.arch().chunk_row_bytes / topo.transfer_bytes));
        assert_eq!(macs, waves * ranks_per_wave * topo.columns());
        assert_eq!(acts, waves * ranks_per_wave);
    }

    #[test]
    fn hbm_pim_fills_slots() {
        let spec = DramSpec::lpddr5_6400(16, 2 << 30);
        let arch = PimArch::hbm_pim(&spec.topology);
        let mut sys = FacilSystem::new(spec, arch);
        let alloc = sys.pimalloc(MatrixConfig::new(64, 1024, DType::F16)).unwrap();
        let seq = CommandSequence::trace(&sys, &alloc).unwrap();
        for w in seq.waves() {
            for t in &w.tasks {
                // 8 matrix rows share the DRAM row at distinct slots.
                let slots: Vec<u64> = t.rows.iter().map(|r| r.slot).collect();
                assert_eq!(slots, (0..8).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn bank_hash_with_mapid_zero_traces() {
        let mut sys = iphone();
        let topo = sys.spec().topology;
        let arch = *sys.arch();
        // 1024 cols = one chunk per row: MapID 0, hash-safe.
        let m = MatrixConfig::new(16, 1024, DType::F16);
        let d = decision_with_map_id(&m, topo, &arch, 0, HUGE_PAGE_BITS).unwrap();
        let hashed = MappingDecision { scheme: d.scheme.clone().with_bank_hash(), ..d };
        let alloc = sys.pimalloc_with(m, hashed).unwrap();
        assert!(CommandSequence::trace(&sys, &alloc).is_ok());
    }

    #[test]
    fn bank_hash_with_mapid_above_zero_is_rejected() {
        let mut sys = iphone();
        let topo = sys.spec().topology;
        let arch = *sys.arch();
        // 2048 cols = two chunks per row at MapID 1: the hash XORs the bank
        // with row bits that differ between the two segments, so the PU
        // accumulator would migrate between banks mid-tile.
        let m = MatrixConfig::new(16, 2048, DType::F16);
        let d = decision_with_map_id(&m, topo, &arch, 1, HUGE_PAGE_BITS).unwrap();
        assert_eq!(d.partitions, 1);
        let hashed = MappingDecision { scheme: d.scheme.clone().with_bank_hash(), ..d };
        let alloc = sys.pimalloc_with(m, hashed).unwrap();
        let err = CommandSequence::trace(&sys, &alloc).unwrap_err();
        assert!(matches!(err, FacilError::InvalidMapping(_)), "{err}");
        assert!(err.to_string().contains("bank-stable"), "{err}");
    }

    #[test]
    fn partitioned_rows_stage_multiple_slices() {
        // Wide system: 4096-col rows partition by 2.
        let spec = DramSpec::lpddr5_6400(256, 64 << 30);
        let arch = PimArch::aim(&spec.topology);
        let mut sys = FacilSystem::new(spec, arch);
        let alloc = sys.pimalloc(MatrixConfig::new(8, 4096, DType::F16)).unwrap();
        assert_eq!(alloc.decision.partitions, 2);
        let seq = CommandSequence::trace(&sys, &alloc).unwrap();
        for w in seq.waves() {
            let parts: BTreeSet<u64> =
                w.tasks.iter().flat_map(|t| t.rows.iter().map(|r| r.partition)).collect();
            for p in &parts {
                let slice = w.gb.iter().find(|s| s.partition == *p).unwrap();
                assert_eq!(slice.elems, seq.chunk_elems());
            }
        }
    }
}
