//! Functional (data-value) PIM execution over the byte-accurate DRAM model.
//!
//! This is the end-to-end demonstration of FACIL's core claim: the SoC
//! writes weights through plain row-major *virtual* addresses, and the PIM
//! engine — addressing DRAM *cells* directly, bank by bank, row by row —
//! computes the correct GEMV over the very same cells, with no re-layout in
//! between.

use facil_core::{FacilSystem, PimAllocation};
use facil_dram::CellStore;

use crate::f16::{decode_f16_le, encode_f16_le};

/// Store a row-major `f32` matrix as fp16 through the SoC's virtual-address
/// view (padded row stride, as `pimalloc` lays it out).
///
/// # Panics
///
/// Panics if `values.len() != rows * cols` or the allocation's dtype is not
/// 16-bit.
///
/// # Errors
///
/// [`facil_core::FacilError::NotMapped`] if the allocation's VA range is no
/// longer mapped (e.g. it was freed).
pub fn store_matrix<S: CellStore>(
    mem: &mut S,
    sys: &FacilSystem,
    alloc: &PimAllocation,
    values: &[f32],
) -> facil_core::Result<()> {
    let m = &alloc.matrix;
    assert_eq!(values.len() as u64, m.rows * m.cols, "value count must match the matrix shape");
    assert_eq!(m.dtype.bytes(), 2, "functional path models 16-bit weights");
    let mapper = sys.va_mapper();
    for r in 0..m.rows {
        let row = &values[(r * m.cols) as usize..((r + 1) * m.cols) as usize];
        let bytes = encode_f16_le(row);
        mem.write_bytes(&mapper, alloc.element_va(r, 0), &bytes)?;
    }
    Ok(())
}

/// Read the matrix back through the SoC view (for re-layout-free GEMM).
///
/// # Errors
///
/// [`facil_core::FacilError::NotMapped`] if the allocation's VA range is no
/// longer mapped.
pub fn load_matrix<S: CellStore>(
    mem: &S,
    sys: &FacilSystem,
    alloc: &PimAllocation,
) -> facil_core::Result<Vec<f32>> {
    let m = &alloc.matrix;
    let mapper = sys.va_mapper();
    let mut out = Vec::with_capacity((m.rows * m.cols) as usize);
    for r in 0..m.rows {
        let bytes = mem.read_bytes(&mapper, alloc.element_va(r, 0), (m.cols * 2) as usize)?;
        out.extend(decode_f16_le(&bytes));
    }
    Ok(out)
}

/// Execute `y = W x` the PIM way: walk the matrix chunk by chunk, resolve
/// each chunk to its DRAM cells, check the placement invariants on the fly
/// (one bank, one row, contiguous columns per chunk), read the weights by
/// *device* address and accumulate.
///
/// Partition partial sums are reduced at the end, exactly as the SoC does
/// after a partitioned PIM GEMV (paper Fig. 10).
///
/// # Panics
///
/// Panics if `x.len() != cols`, or if the placement violates the PIM
/// invariants (which would mean the mapping is broken).
pub fn pim_gemv<S: CellStore>(
    mem: &S,
    sys: &FacilSystem,
    alloc: &PimAllocation,
    x: &[f32],
) -> Vec<f32> {
    let m = &alloc.matrix;
    assert_eq!(x.len() as u64, m.cols, "input length must match matrix columns");
    let topo = sys.spec().topology;
    let arch = sys.arch();
    let scheme = &alloc.decision.scheme;
    let tx = topo.transfer_bytes;
    let chunk_bytes = arch.chunk_row_bytes;
    let chunk_elems = (chunk_bytes / 2) as usize;
    let page_table = sys.page_table();

    let mut y = vec![0f32; m.rows as usize];
    for r in 0..m.rows {
        let mut acc_parts: Vec<f32> = Vec::new(); // one partial per PU touched
        let mut last_pu = None;
        let mut acc = 0f32;
        let mut col = 0u64;
        while col < m.cols {
            let n = chunk_elems.min((m.cols - col) as usize);
            let va = alloc.element_va(r, col);
            // VA -> PA through the page table (the PTE supplies the MapID,
            // but here we use the allocation's scheme directly, as the
            // frontend mux would).
            // The allocator mapped every VA of this placement before handing
            // it out, so translation cannot miss.
            #[allow(clippy::expect_used)]
            let pa = page_table.translate(va).expect("allocation is mapped").pa;
            let first = scheme.map_pa(pa);
            // Gather the chunk transfer by transfer via device addresses,
            // asserting PIM placement invariants.
            let mut bytes = Vec::with_capacity(chunk_bytes as usize);
            for t in 0..(n as u64 * 2).div_ceil(tx) {
                let da = scheme.map_pa(pa + t * tx);
                assert_eq!(
                    (da.channel, da.rank, da.bank, da.row),
                    (first.channel, first.rank, first.bank, first.row),
                    "chunk must stay in one DRAM row of one bank"
                );
                assert_eq!(da.column, first.column + t, "chunk must be at contiguous columns");
                bytes.extend(mem.load_transfer(da));
            }
            let w = decode_f16_le(&bytes[..n * 2]);
            let pu = (first.channel, first.rank, first.bank);
            if last_pu.is_some() && last_pu != Some(pu) {
                // Crossed into another PU: a new partial sum begins
                // (column-partitioned row).
                acc_parts.push(acc);
                acc = 0.0;
            }
            last_pu = Some(pu);
            for (i, wv) in w.iter().enumerate() {
                acc += wv * x[col as usize + i];
            }
            col += n as u64;
        }
        acc_parts.push(acc);
        assert_eq!(
            acc_parts.len() as u64,
            alloc.decision.partitions,
            "row must span exactly `partitions` PUs"
        );
        // SoC-side reduction of the partials.
        y[r as usize] = acc_parts.iter().sum();
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use facil_core::{DType, MatrixConfig, PimArch};
    use facil_dram::{DramSpec, FunctionalMemory};

    fn make_system() -> FacilSystem {
        let spec = DramSpec::lpddr5_6400(64, 8 << 30);
        let arch = PimArch::aim(&spec.topology);
        FacilSystem::new(spec, arch)
    }

    fn reference_gemv(rows: usize, cols: usize, w: &[f32], x: &[f32]) -> Vec<f32> {
        (0..rows).map(|r| (0..cols).map(|c| w[r * cols + c] * x[c]).sum()).collect()
    }

    #[test]
    fn pim_gemv_matches_reference() {
        let mut sys = make_system();
        let (rows, cols) = (64u64, 2048u64);
        let alloc = sys.pimalloc(MatrixConfig::new(rows, cols, DType::F16)).unwrap();
        let mut mem = FunctionalMemory::new(sys.spec().topology);

        // Deterministic small-magnitude weights (exact in fp16).
        let w: Vec<f32> = (0..rows * cols).map(|i| ((i % 7) as f32 - 3.0) * 0.25).collect();
        let x: Vec<f32> = (0..cols).map(|i| ((i % 5) as f32 - 2.0) * 0.5).collect();
        store_matrix(&mut mem, &sys, &alloc, &w).unwrap();

        let y = pim_gemv(&mem, &sys, &alloc, &x);
        let reference = reference_gemv(rows as usize, cols as usize, &w, &x);
        for (a, b) in y.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-3 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn soc_view_reads_back_what_it_wrote() {
        let mut sys = make_system();
        let alloc = sys.pimalloc(MatrixConfig::new(16, 2048, DType::F16)).unwrap();
        let mut mem = FunctionalMemory::new(sys.spec().topology);
        let w: Vec<f32> = (0..16 * 2048).map(|i| (i % 11) as f32 * 0.125).collect();
        store_matrix(&mut mem, &sys, &alloc, &w).unwrap();
        assert_eq!(
            load_matrix(&mem, &sys, &alloc).unwrap(),
            w,
            "row-major SoC view is intact: no re-layout needed"
        );
    }

    #[test]
    fn partitioned_rows_reduce_correctly() {
        // Jetson-like wide system forces 2-way partitioning.
        let spec = DramSpec::lpddr5_6400(256, 64 << 30);
        let arch = PimArch::aim(&spec.topology);
        let mut sys = FacilSystem::new(spec, arch);
        let alloc = sys.pimalloc(MatrixConfig::new(8, 4096, DType::F16)).unwrap();
        assert_eq!(alloc.decision.partitions, 2);
        let mut mem = FunctionalMemory::new(sys.spec().topology);
        let w: Vec<f32> = (0..8 * 4096).map(|i| ((i % 3) as f32 - 1.0) * 0.5).collect();
        let x: Vec<f32> = (0..4096).map(|i| ((i % 4) as f32 - 1.5) * 0.25).collect();
        store_matrix(&mut mem, &sys, &alloc, &w).unwrap();
        let y = pim_gemv(&mem, &sys, &alloc, &x);
        let reference = reference_gemv(8, 4096, &w, &x);
        for (a, b) in y.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-2 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn hbm_pim_style_gemv_matches_reference() {
        // Single-channel system so HBM-PIM chunks need no partitioning.
        let spec = DramSpec::lpddr5_6400(16, 2 << 30);
        let arch = PimArch::hbm_pim(&spec.topology);
        let mut sys = FacilSystem::new(spec, arch);
        let alloc = sys.pimalloc(MatrixConfig::new(64, 1024, DType::F16)).unwrap();
        let mut mem = FunctionalMemory::new(sys.spec().topology);
        let w: Vec<f32> = (0..64 * 1024).map(|i| ((i % 5) as f32 - 2.0) * 0.5).collect();
        let x: Vec<f32> = (0..1024).map(|i| ((i % 6) as f32 - 2.5) * 0.25).collect();
        store_matrix(&mut mem, &sys, &alloc, &w).unwrap();
        let y = pim_gemv(&mem, &sys, &alloc, &x);
        for (r, got) in y.iter().enumerate() {
            let want: f32 = (0..1024).map(|c| w[r * 1024 + c] * x[c]).sum();
            assert!((got - want).abs() < 1e-2 * want.abs().max(1.0), "row {r}: {got} vs {want}");
        }
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn wrong_input_length_panics() {
        let mut sys = make_system();
        let alloc = sys.pimalloc(MatrixConfig::new(4, 2048, DType::F16)).unwrap();
        let mem = FunctionalMemory::new(sys.spec().topology);
        pim_gemv(&mem, &sys, &alloc, &[0.0; 16]);
    }
}
