//! Command-level timing of AiM-style GEMV/GEMM execution over DRAM timing.
//!
//! The model follows the near-bank all-bank execution of the paper
//! (Section II-C, VI-A): per rank, the global input buffer (one DRAM row,
//! shared by the 16 banks) is loaded with an input segment, then each
//! weight DRAM row is processed as `ACT-AB → one MAC-AB per column burst →
//! PRE-AB`, every bank MAC-ing its own chunk in lock-step. Both ranks of a
//! channel interleave commands on the shared command/data bus; the channel
//! time is the maximum of the bus occupancy and the per-rank timing path.

use facil_core::{MappingDecision, MatrixConfig, PimArch};
use facil_dram::DramSpec;
use facil_telemetry::{ArgValue, TraceSink};
use serde::{Deserialize, Serialize};

use crate::layout::PimPlacement;

/// Timing knobs of the PIM processing unit (defaults follow the AiM-style
/// configuration of paper Section VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PimTimingConfig {
    /// Issue interval of MAC-AB commands in controller cycles. tCCD (=2) is
    /// the DRAM limit; a larger value models a MAC unit slower than the
    /// column pipeline.
    pub mac_interval: u64,
    /// Whether the global-buffer load of segment *s+1* overlaps the MAC
    /// stream of segment *s* (double buffering).
    pub gb_double_buffer: bool,
    /// Cycles to drain the per-bank output registers of one rank per tile.
    pub drain_cycles_per_tile: u64,
}

impl Default for PimTimingConfig {
    fn default() -> Self {
        PimTimingConfig { mac_interval: 2, gb_double_buffer: true, drain_cycles_per_tile: 8 }
    }
}

/// Timing breakdown of one PIM operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PimOpTiming {
    /// Total channel cycles (max over bus- and rank-limited paths).
    pub cycles: u64,
    /// Total time in nanoseconds, including output drain to the SoC and the
    /// partition reduction.
    pub time_ns: f64,
    /// Weight bytes streamed.
    pub weight_bytes: u64,
    /// Input bytes broadcast into global buffers (counting per-tile reloads).
    pub input_bytes: u64,
    /// Output bytes returned to the SoC (partials included).
    pub output_bytes: u64,
    /// Achieved internal weight-streaming bandwidth, bytes/second.
    pub internal_bw: f64,
    /// Nanoseconds spent on the SoC-side partial-sum reduction.
    pub reduction_ns: f64,
    /// DRAM-side energy of the operation in microjoules (weights stay
    /// on-die: no interface energy for them; inputs/outputs cross the pins).
    pub energy_uj: f64,
}

/// AiM-style PIM execution engine bound to a DRAM spec.
#[derive(Debug, Clone)]
pub struct PimEngine {
    spec: DramSpec,
    arch: PimArch,
    cfg: PimTimingConfig,
}

impl PimEngine {
    /// Create an engine with default PU timing.
    pub fn new(spec: DramSpec, arch: PimArch) -> Self {
        Self::with_config(spec, arch, PimTimingConfig::default())
    }

    /// Create an engine with explicit PU timing.
    pub fn with_config(spec: DramSpec, arch: PimArch, cfg: PimTimingConfig) -> Self {
        PimEngine { spec, arch, cfg }
    }

    /// The DRAM spec.
    pub fn spec(&self) -> &DramSpec {
        &self.spec
    }

    /// The PIM architecture.
    pub fn arch(&self) -> &PimArch {
        &self.arch
    }

    /// Theoretical peak internal bandwidth: every bank of every rank of
    /// every channel streaming one transfer per MAC interval.
    pub fn peak_internal_bandwidth(&self) -> f64 {
        let topo = &self.spec.topology;
        let per_bank =
            topo.transfer_bytes as f64 / self.spec.cycles_to_ns(self.cfg.mac_interval) * 1e9;
        per_bank * topo.total_banks() as f64
    }

    /// Time a GEMV (`y = W x`) over a matrix placed by `decision`.
    pub fn gemv(&self, matrix: &MatrixConfig, decision: &MappingDecision) -> PimOpTiming {
        self.gemm(matrix, decision, 1)
    }

    /// [`PimEngine::gemv`] plus a kernel span on `sink` (see
    /// [`PimEngine::gemm_traced`]).
    pub fn gemv_traced<S: TraceSink>(
        &self,
        matrix: &MatrixConfig,
        decision: &MappingDecision,
        sink: &mut S,
        start_ns: f64,
    ) -> PimOpTiming {
        self.gemm_traced(matrix, decision, 1, sink, start_ns)
    }

    /// [`PimEngine::gemm`] plus one `pim` kernel span on `sink`, starting
    /// at simulated time `start_ns` (the engine itself has no clock; the
    /// caller supplies where on its timeline the kernel runs). The timing
    /// result is identical to the untraced call.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn gemm_traced<S: TraceSink>(
        &self,
        matrix: &MatrixConfig,
        decision: &MappingDecision,
        m: u64,
        sink: &mut S,
        start_ns: f64,
    ) -> PimOpTiming {
        let timing = self.gemm(matrix, decision, m);
        if sink.enabled() {
            let track = sink.track("pim", "kernels");
            let name = if m == 1 { "GEMV" } else { "GEMM" };
            sink.complete(
                track,
                name,
                start_ns,
                timing.time_ns,
                &[
                    ("rows", ArgValue::U64(matrix.rows)),
                    ("cols", ArgValue::U64(matrix.cols)),
                    ("m", ArgValue::U64(m)),
                    ("reduction_ns", ArgValue::F64(timing.reduction_ns)),
                ],
            );
        }
        timing
    }

    /// Cycle-level cross-validation path: build the per-rank all-bank
    /// command streams this GEMV issues on one channel and simulate them
    /// command by command on [`facil_dram::run_allbank`]. The analytic
    /// [`PimEngine::gemv`] cycles must agree with this within a small
    /// tolerance (asserted by the test suite).
    pub fn gemv_simulated_cycles(&self, matrix: &MatrixConfig, decision: &MappingDecision) -> u64 {
        let topo = &self.spec.topology;
        let placement = PimPlacement::new(matrix, decision, topo, &self.arch);
        let streams: Vec<facil_dram::PimStream> = (0..topo.ranks)
            .map(|rank| facil_dram::PimStream {
                rank,
                rows: placement.dram_rows_per_bank,
                gb_cmds_per_row: self.arch.chunk_row_bytes / topo.transfer_bytes,
                macs_per_row: topo.columns(),
                mac_interval: self.cfg.mac_interval,
                double_buffer: self.cfg.gb_double_buffer,
            })
            .collect();
        facil_dram::run_allbank(&self.spec, &streams).cycles
    }

    /// Time a GEMM (`Y = W X` with `m` input vectors) executed on PIM as
    /// `m` successive MAC passes (how a GEMV engine performs GEMM; used by
    /// the hybrid-dynamic baseline for short prefills).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn gemm(&self, matrix: &MatrixConfig, decision: &MappingDecision, m: u64) -> PimOpTiming {
        assert!(m > 0, "GEMM needs at least one input vector");
        let topo = &self.spec.topology;
        let tm = &self.spec.timing;
        let placement = PimPlacement::new(matrix, decision, topo, &self.arch);

        let gb_cmds = self.arch.chunk_row_bytes / topo.transfer_bytes;
        let mac_cmds = topo.columns();
        let gb_cycles = gb_cmds * tm.ccd_l;
        let row_cycles = tm.rcd + mac_cmds * self.cfg.mac_interval + tm.rtp + tm.rp;
        let seg_cycles = if self.cfg.gb_double_buffer {
            gb_cycles.max(row_cycles)
        } else {
            gb_cycles + row_cycles
        };

        // Per-rank timing path (ranks run concurrently).
        let segs_total = placement.tiles * placement.segments * m;
        let rank_cycles =
            segs_total * seg_cycles + placement.tiles * m * self.cfg.drain_cycles_per_tile;
        // Command/data bus path: both ranks share one bus per channel.
        let bus_per_seg = gb_cmds + mac_cmds + 2;
        let bus_cycles = topo.ranks
            * (segs_total * bus_per_seg + placement.tiles * m * self.cfg.drain_cycles_per_tile);
        let cycles = rank_cycles.max(bus_cycles);

        let weight_bytes = placement.weight_bytes * m;
        let input_bytes = placement.tiles
            * placement.segments
            * self.arch.chunk_row_bytes
            * topo.ranks
            * topo.channels
            * m;
        let output_bytes = matrix.rows * placement.partitions * matrix.dtype.bytes() * m;

        let stream_ns = self.spec.cycles_to_ns(cycles);
        // Output drain to the SoC over the external interface.
        let out_ns = output_bytes as f64 / self.spec.peak_bandwidth_bytes_per_sec() * 1e9;
        // SoC-side partition reduction: read+add+write partials, memory-bound.
        let red_elems = placement.reduction_elems(matrix) * m;
        let reduction_ns = if red_elems > 0 {
            let bytes = red_elems * matrix.dtype.bytes() * 2; // read partials, write results
            bytes as f64 / self.spec.peak_bandwidth_bytes_per_sec() * 1e9
        } else {
            0.0
        };
        let time_ns = stream_ns + out_ns + reduction_ns;
        // DRAM-side energy: weight reads are internal (no interface
        // energy); input broadcast and output drain cross the pins.
        let energy_model = facil_dram::EnergyModel::default();
        let weight_stats = facil_dram::DramStats {
            reads: weight_bytes / topo.transfer_bytes,
            activates: placement.dram_rows_per_bank * topo.total_banks() * m,
            ..Default::default()
        };
        let io_stats = facil_dram::DramStats {
            reads: (input_bytes + output_bytes) / topo.transfer_bytes + 1,
            ..Default::default()
        };
        let energy_uj = energy_model.energy_internal(&self.spec, &weight_stats, time_ns).total_uj()
            + energy_model.energy(&self.spec, &io_stats, 0.0).total_uj();
        PimOpTiming {
            cycles,
            time_ns,
            weight_bytes,
            input_bytes,
            output_bytes,
            internal_bw: weight_bytes as f64 / (time_ns * 1e-9),
            reduction_ns,
            energy_uj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facil_core::{select_mapping_2mb, DType};
    use facil_dram::DramSpec;

    fn jetson() -> (DramSpec, PimArch) {
        let spec = DramSpec::lpddr5_6400(256, 64 << 30);
        let arch = PimArch::aim(&spec.topology);
        (spec, arch)
    }

    #[test]
    fn gemv_beats_external_bandwidth() {
        let (spec, arch) = jetson();
        let engine = PimEngine::new(spec.clone(), arch);
        let m = MatrixConfig::new(4096, 4096, DType::F16);
        let d = select_mapping_2mb(&m, spec.topology, &arch).unwrap();
        let t = engine.gemv(&m, &d);
        // Internal bandwidth must far exceed the external peak (the whole
        // point of near-bank PIM): >= 8x here.
        let external = spec.peak_bandwidth_bytes_per_sec();
        assert!(
            t.internal_bw > 8.0 * external,
            "internal {:.2e} vs external {:.2e}",
            t.internal_bw,
            external
        );
        // And it cannot exceed the theoretical internal peak.
        assert!(t.internal_bw <= engine.peak_internal_bandwidth() * 1.001);
    }

    #[test]
    fn gemv_time_scales_with_matrix_size() {
        let (spec, arch) = jetson();
        let engine = PimEngine::new(spec.clone(), arch);
        let small = MatrixConfig::new(1024, 4096, DType::F16);
        let large = MatrixConfig::new(4096, 4096, DType::F16);
        let ds = select_mapping_2mb(&small, spec.topology, &arch).unwrap();
        let dl = select_mapping_2mb(&large, spec.topology, &arch).unwrap();
        let ts = engine.gemv(&small, &ds).time_ns;
        let tl = engine.gemv(&large, &dl).time_ns;
        assert!(tl > 3.0 * ts && tl < 5.0 * ts, "4x weights ~ 4x time ({ts} vs {tl})");
    }

    #[test]
    fn gemm_scales_linearly_in_m() {
        let (spec, arch) = jetson();
        let engine = PimEngine::new(spec.clone(), arch);
        let m = MatrixConfig::new(4096, 4096, DType::F16);
        let d = select_mapping_2mb(&m, spec.topology, &arch).unwrap();
        let t1 = engine.gemm(&m, &d, 1).time_ns;
        let t8 = engine.gemm(&m, &d, 8).time_ns;
        assert!((t8 / t1 - 8.0).abs() < 0.5, "t8/t1 = {}", t8 / t1);
    }

    #[test]
    fn partition_reduction_costs_extra() {
        let (spec, arch) = jetson();
        let engine = PimEngine::new(spec.clone(), arch);
        // Jetson: 4096-col rows partition by 2.
        let m = MatrixConfig::new(4096, 4096, DType::F16);
        let d = select_mapping_2mb(&m, spec.topology, &arch).unwrap();
        assert_eq!(d.partitions, 2);
        let t = engine.gemv(&m, &d);
        assert!(t.reduction_ns > 0.0);
        assert_eq!(t.output_bytes, 4096 * 2 * 2);
    }

    #[test]
    fn no_double_buffer_is_slower() {
        let (spec, arch) = jetson();
        let fast = PimEngine::new(spec.clone(), arch);
        let slow = PimEngine::with_config(
            spec.clone(),
            arch,
            PimTimingConfig { gb_double_buffer: false, ..Default::default() },
        );
        let m = MatrixConfig::new(4096, 4096, DType::F16);
        let d = select_mapping_2mb(&m, spec.topology, &arch).unwrap();
        assert!(slow.gemv(&m, &d).time_ns > fast.gemv(&m, &d).time_ns);
    }

    #[test]
    fn slower_mac_unit_reduces_bandwidth() {
        let (spec, arch) = jetson();
        let m = MatrixConfig::new(4096, 4096, DType::F16);
        let d = select_mapping_2mb(&m, spec.topology, &arch).unwrap();
        let t2 = PimEngine::new(spec.clone(), arch).gemv(&m, &d);
        let t8 = PimEngine::with_config(
            spec.clone(),
            arch,
            PimTimingConfig { mac_interval: 8, ..Default::default() },
        )
        .gemv(&m, &d);
        assert!(t8.time_ns > 2.0 * t2.time_ns);
    }

    #[test]
    fn gemv_reports_positive_energy() {
        let (spec, arch) = jetson();
        let engine = PimEngine::new(spec.clone(), arch);
        let m = MatrixConfig::new(4096, 4096, DType::F16);
        let d = select_mapping_2mb(&m, spec.topology, &arch).unwrap();
        let t = engine.gemv(&m, &d);
        assert!(t.energy_uj > 0.0);
        // Energy scales with m.
        let t4 = engine.gemm(&m, &d, 4);
        assert!(t4.energy_uj > 3.0 * t.energy_uj);
    }

    #[test]
    fn analytic_model_matches_cycle_simulation() {
        // The analytic GEMV timing must track the command-level all-bank
        // simulation within 15% across shapes and configurations.
        let spec = DramSpec::lpddr5_6400(16, 1 << 30); // one channel
        let arch = PimArch::aim(&spec.topology);
        for (rows, cols) in [(512u64, 2048u64), (2048, 2048), (1024, 8192)] {
            let m = MatrixConfig::new(rows, cols, DType::F16);
            let d = select_mapping_2mb(&m, spec.topology, &arch).unwrap();
            for cfg in [
                PimTimingConfig::default(),
                PimTimingConfig { gb_double_buffer: false, ..Default::default() },
                PimTimingConfig { mac_interval: 4, ..Default::default() },
            ] {
                let engine = PimEngine::with_config(spec.clone(), arch, cfg);
                let analytic = engine.gemv(&m, &d).cycles as f64;
                let simulated = engine.gemv_simulated_cycles(&m, &d) as f64;
                let err = (analytic - simulated).abs() / simulated;
                assert!(
                    err < 0.15,
                    "{rows}x{cols} {cfg:?}: analytic {analytic} vs simulated {simulated} ({err:.1}%)"
                );
            }
        }
    }

    #[test]
    fn traced_gemv_matches_untraced_and_records_kernel() {
        use facil_telemetry::{NullSink, RingSink};

        let (spec, arch) = jetson();
        let engine = PimEngine::new(spec.clone(), arch);
        let m = MatrixConfig::new(4096, 4096, DType::F16);
        let d = select_mapping_2mb(&m, spec.topology, &arch).unwrap();
        let plain = engine.gemv(&m, &d);
        let mut null = NullSink;
        assert_eq!(engine.gemv_traced(&m, &d, &mut null, 0.0), plain);
        let mut sink = RingSink::new(8);
        assert_eq!(engine.gemm_traced(&m, &d, 4, &mut sink, 100.0), engine.gemm(&m, &d, 4));
        assert_eq!(sink.len(), 1);
        let e = sink.events().next().unwrap();
        assert_eq!(e.name, "GEMM");
        assert_eq!(e.ts_ns, 100.0);
        assert!(e.dur_ns > 0.0);
        assert!(sink.to_chrome_json().contains(r#""name":"kernels""#));
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn zero_m_panics() {
        let (spec, arch) = jetson();
        let engine = PimEngine::new(spec.clone(), arch);
        let m = MatrixConfig::new(1024, 4096, DType::F16);
        let d = select_mapping_2mb(&m, spec.topology, &arch).unwrap();
        engine.gemm(&m, &d, 0);
    }
}
