//! Property-based tests for PIM placement geometry and timing.

use facil_core::{select_mapping_2mb, DType, MatrixConfig, PimArch};
use facil_dram::{DramSpec, Topology};
use facil_pim::{PimEngine, PimPlacement};
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    (0u32..=4, 0u32..=1, 12u32..=15)
        .prop_map(|(ch, rk, rowb)| Topology::new(1 << ch, 1 << rk, 4, 4, 1 << rowb, 2048, 32))
}

fn arb_matrix() -> impl Strategy<Value = MatrixConfig> {
    (4u32..=12, 10u32..=14).prop_map(|(r, c)| MatrixConfig::new(1 << r, 1 << c, DType::F16))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Placement geometry conserves weight bytes exactly: the per-bank DRAM
    /// rows, summed over all banks, hold the whole padded matrix (when rows
    /// divide evenly into tiles).
    #[test]
    fn placement_conserves_bytes((topo, m) in (arb_topology(), arb_matrix())) {
        let arch = PimArch::aim(&topo);
        let d = match select_mapping_2mb(&m, topo, &arch) {
            Ok(d) => d,
            Err(_) => return Ok(()),
        };
        let p = PimPlacement::new(&m, &d, &topo, &arch);
        // rows_per_tile * tiles covers all matrix rows (with padding).
        prop_assert!(p.rows_per_tile * p.tiles >= m.rows);
        prop_assert!(p.rows_per_tile * (p.tiles - 1) < m.rows || p.tiles == 1);
        // Total bank storage covers the padded matrix.
        let stored = p.dram_rows_per_bank * topo.row_bytes * topo.total_banks();
        let padded_tiles = p.tiles * p.rows_per_tile * m.padded_row_bytes();
        prop_assert_eq!(stored, padded_tiles, "per-bank rows x banks == padded tile bytes");
        // Partition accounting.
        prop_assert_eq!(p.partitions, d.partitions);
        prop_assert!(p.segments * arch.chunk_row_bytes * p.partitions >= m.padded_row_bytes());
    }

    /// GEMV timing is monotone: more rows never takes less time, and the
    /// internal bandwidth never exceeds the configured peak.
    #[test]
    fn gemv_timing_is_monotone_and_bounded(
        (topo, m) in (arb_topology(), arb_matrix())
    ) {
        let arch = PimArch::aim(&topo);
        let spec = DramSpec::build(
            facil_dram::DramKind::Lpddr5,
            6400,
            16 * topo.channels,
            topo.capacity_bytes(),
        );
        let d = match select_mapping_2mb(&m, topo, &arch) {
            Ok(d) => d,
            Err(_) => return Ok(()),
        };
        let engine = PimEngine::new(spec, arch);
        let t1 = engine.gemv(&m, &d);
        prop_assert!(t1.time_ns > 0.0);
        prop_assert!(t1.internal_bw <= engine.peak_internal_bandwidth() * 1.001,
            "bw {} > peak {}", t1.internal_bw, engine.peak_internal_bandwidth());
        // Doubling the rows at the same shape class never gets cheaper.
        let m2 = MatrixConfig::new(m.rows * 2, m.cols, m.dtype);
        if let Ok(d2) = select_mapping_2mb(&m2, topo, &arch) {
            let t2 = engine.gemv(&m2, &d2);
            prop_assert!(t2.time_ns >= t1.time_ns * 0.99);
        }
        // GEMM with m vectors costs at least m-1 times the GEMV stream.
        let g = engine.gemm(&m, &d, 4);
        prop_assert!(g.time_ns > 3.0 * t1.cycles as f64 * 0.5);
        prop_assert_eq!(g.weight_bytes, 4 * t1.weight_bytes);
    }

    /// fp16 codec: decode(encode(x)) is within half-precision tolerance for
    /// in-range values.
    #[test]
    fn f16_codec_tolerance(values in prop::collection::vec(-1000.0f32..1000.0, 1..64)) {
        let bytes = facil_pim::f16::encode_f16_le(&values);
        let back = facil_pim::f16::decode_f16_le(&bytes);
        for (a, b) in values.iter().zip(&back) {
            let tol = a.abs() * 1e-3 + 1e-3;
            prop_assert!((a - b).abs() <= tol, "{a} vs {b}");
        }
    }
}
