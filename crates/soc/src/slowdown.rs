//! The Table III experiment: how much slower does an SoC GEMM kernel run
//! when its weight matrix lives in a PIM-optimized layout instead of the
//! conventional one?
//!
//! The paper measures this with GPGPU-Sim/ONNXim and reports small numbers
//! (0.0 – 2.1 %). Two DRAM-level probes reproduce the effect here:
//!
//! 1. **Burst latency** ([`coalesced_burst_latency_ns`]): a GPU/NPU issues
//!    coalesced reads of a few hundred bytes. Under the conventional
//!    mapping those spread over several channels and complete in parallel;
//!    under the PIM mapping they serialize in one bank. The extra latency
//!    is mostly — but not fully — hidden by multithreading; the *exposed*
//!    fraction is the GEMM slowdown ([`gemm_layout_slowdown`]).
//! 2. **Streaming throughput** ([`streaming_throughput_ratio`]): for
//!    bandwidth, the PIM layout is *not* worse — many concurrent readers
//!    fill all banks either way (each PIM-mapped reader streams one bank
//!    with long row hits). This is consistent with the paper's Table III:
//!    if the PIM layout hurt steady-state bandwidth, the slowdowns could
//!    not be sub-3%.

use facil_core::{select_mapping_2mb, MappingScheme, MatrixConfig, PimArch};
use facil_dram::{run_trace, AddressMapper, DramSpec, TraceEntry, TraceOptions};
use serde::{Deserialize, Serialize};

/// Result of one layout-slowdown measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlowdownResult {
    /// Coalesced-burst latency under the conventional mapping (ns).
    pub conventional_latency_ns: f64,
    /// Coalesced-burst latency under the PIM-optimized mapping (ns).
    pub pim_latency_ns: f64,
    /// Fraction of the extra latency left exposed after latency hiding.
    pub exposed_fraction: f64,
    /// Predicted GEMM slowdown (`>= 0`).
    pub slowdown: f64,
}

/// Latency of one coalesced read burst of `bytes` starting at `base_pa`,
/// issued to an idle memory system, in nanoseconds.
///
/// # Errors
///
/// Propagates translation faults from `mapper`.
pub fn coalesced_burst_latency_ns<M: AddressMapper>(
    spec: &DramSpec,
    mapper: &M,
    base_pa: u64,
    bytes: u64,
) -> facil_core::Result<f64> {
    let tx = spec.topology.transfer_bytes;
    let trace = (0..bytes.div_ceil(tx)).map(|i| TraceEntry::read(base_pa + i * tx));
    Ok(run_trace(spec, mapper, trace, TraceOptions::default())?.elapsed_ns)
}

/// Latency-hiding model: the fraction of extra memory latency a GPU/NPU
/// GEMM leaves exposed. Tall weights (FC1-style, many output rows) keep
/// more partial-sum state live per tile and expose more latency, and longer
/// prefills widen the exposed window slightly — matching the Table III
/// trends (FC1 worst on Jetson, growing 0.9% -> 2.1% with prefill).
fn exposed_fraction(prefill: u64, matrix_rows: u64) -> f64 {
    let base = 0.012;
    let tall_factor = (matrix_rows as f64 / 8192.0).clamp(0.25, 2.0);
    let prefill_factor = 1.0 + 0.15 * (prefill.max(4) as f64 / 4.0).log2();
    base * tall_factor * prefill_factor
}

/// Measure the GEMM layout slowdown for `matrix` on `spec`/`arch` at the
/// given prefill length (one cell of Table III).
///
/// # Errors
///
/// Propagates mapping-selection errors.
pub fn gemm_layout_slowdown(
    spec: &DramSpec,
    arch: &PimArch,
    matrix: &MatrixConfig,
    prefill: u64,
) -> facil_core::Result<SlowdownResult> {
    let decision = select_mapping_2mb(matrix, spec.topology, arch)?;
    let conventional = MappingScheme::conventional(spec.topology);
    // A coalesced warp/tile access: 512 B (16 lanes x 32 B).
    let burst = 512;
    // Average over several burst positions within a page.
    let mut conv_lat = 0.0;
    let mut pim_lat = 0.0;
    let samples = 8;
    for i in 0..samples {
        let base = i * 17 * burst;
        conv_lat += coalesced_burst_latency_ns(spec, &conventional, base, burst)?;
        pim_lat += coalesced_burst_latency_ns(spec, &decision.scheme, base, burst)?;
    }
    conv_lat /= samples as f64;
    pim_lat /= samples as f64;
    let exposed = exposed_fraction(prefill, matrix.rows);
    let slowdown = ((pim_lat / conv_lat - 1.0) * exposed).max(0.0);
    Ok(SlowdownResult {
        conventional_latency_ns: conv_lat,
        pim_latency_ns: pim_lat,
        exposed_fraction: exposed,
        slowdown,
    })
}

/// Steady-state weight-streaming throughput ratio (PIM layout vs
/// conventional) with `readers` concurrent tile readers over a
/// `sample_bytes` region: values near (or above) 1.0 confirm the PIM layout
/// does not hurt bandwidth-bound phases.
///
/// # Errors
///
/// Propagates mapping-selection errors.
pub fn streaming_throughput_ratio(
    spec: &DramSpec,
    arch: &PimArch,
    matrix: &MatrixConfig,
    readers: u64,
    sample_bytes: u64,
) -> facil_core::Result<f64> {
    let decision = select_mapping_2mb(matrix, spec.topology, arch)?;
    let conventional = MappingScheme::conventional(spec.topology);
    let region = sample_bytes.min(matrix.padded_bytes()).max(2 << 20);
    let trace = gemm_weight_trace(region, readers, spec.topology.transfer_bytes);
    let conv = run_trace(spec, &conventional, trace.clone(), TraceOptions::default())?;
    let pim = run_trace(spec, &decision.scheme, trace, TraceOptions::default())?;
    Ok(conv.elapsed_ns / pim.elapsed_ns)
}

/// Synthesize the weight-read trace of a tiled GEMM kernel: `readers`
/// concurrent tile readers, each streaming its own contiguous row block,
/// interleaved at transfer granularity. The `+41·r` phase term de-aligns
/// the low (channel/bank) address bits between readers; without it every
/// reader would hit the same bank on every cycle.
fn gemm_weight_trace(region_bytes: u64, readers: u64, transfer: u64) -> Vec<TraceEntry> {
    let block = region_bytes / readers;
    let transfers_per_block = block / transfer;
    let stagger = transfers_per_block / readers;
    let mut trace = Vec::with_capacity((region_bytes / transfer) as usize);
    for t in 0..transfers_per_block {
        for r in 0..readers {
            let local = (t + r * stagger + r * 41) % transfers_per_block;
            trace.push(TraceEntry::read(r * block + local * transfer));
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use facil_core::DType;

    fn iphone() -> (DramSpec, PimArch) {
        let spec = DramSpec::lpddr5_6400(64, 8 << 30);
        let arch = PimArch::aim(&spec.topology);
        (spec, arch)
    }

    #[test]
    fn pim_layout_has_higher_burst_latency() {
        let (spec, arch) = iphone();
        let m = MatrixConfig::new(2048, 2048, DType::F16);
        let r = gemm_layout_slowdown(&spec, &arch, &m, 16).unwrap();
        assert!(
            r.pim_latency_ns > r.conventional_latency_ns,
            "PIM burst {} vs conventional {}",
            r.pim_latency_ns,
            r.conventional_latency_ns
        );
    }

    #[test]
    fn slowdown_is_small_like_table3() {
        let (spec, arch) = iphone();
        let m = MatrixConfig::new(2048, 2048, DType::F16);
        for prefill in [4u64, 16, 64] {
            let r = gemm_layout_slowdown(&spec, &arch, &m, prefill).unwrap();
            assert!(r.slowdown >= 0.0);
            assert!(r.slowdown < 0.05, "prefill {prefill}: slowdown {}", r.slowdown);
        }
    }

    #[test]
    fn taller_weights_expose_more_latency() {
        // FC1-like (many output rows) vs FC2-like, as in Table III.
        let (spec, arch) = iphone();
        let short = MatrixConfig::new(2048, 8192, DType::F16);
        let tall = MatrixConfig::new(8192, 2048, DType::F16);
        let a = gemm_layout_slowdown(&spec, &arch, &short, 16).unwrap();
        let b = gemm_layout_slowdown(&spec, &arch, &tall, 16).unwrap();
        assert!(b.exposed_fraction > a.exposed_fraction);
    }

    #[test]
    fn slowdown_grows_mildly_with_prefill() {
        // Paper Table III: Jetson FC1 0.9% -> 2.1% from P4 to P64.
        let (spec, arch) = iphone();
        let m = MatrixConfig::new(8192, 2048, DType::F16);
        let p4 = gemm_layout_slowdown(&spec, &arch, &m, 4).unwrap();
        let p64 = gemm_layout_slowdown(&spec, &arch, &m, 64).unwrap();
        assert!(p64.slowdown >= p4.slowdown);
    }

    #[test]
    fn streaming_throughput_is_not_hurt_by_pim_layout() {
        let (spec, arch) = iphone();
        let m = MatrixConfig::new(2048, 2048, DType::F16);
        let ratio = streaming_throughput_ratio(&spec, &arch, &m, 16, 2 << 20).unwrap();
        assert!(ratio > 0.8, "throughput ratio {ratio}");
    }

    #[test]
    fn trace_covers_region_exactly_once() {
        let t = gemm_weight_trace(1 << 20, 8, 32);
        assert_eq!(t.len(), (1 << 20) / 32);
        let set: std::collections::HashSet<u64> = t.iter().map(|e| e.pa).collect();
        assert_eq!(set.len(), t.len(), "each transfer read exactly once");
    }
}
