//! The four evaluation platforms of the paper (Table II), with the
//! calibration constants used throughout the reproduction.

use facil_core::PimArch;
use facil_dram::DramSpec;
use serde::{Deserialize, Serialize};

use crate::exec::{ProcKind, SocProcessor};

/// Identifier of one of the paper's evaluation platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformId {
    /// NVIDIA Jetson AGX Orin 64 GB (GPU, LPDDR5-6400 x 256-bit, Llama3-8B).
    Jetson,
    /// Apple MacBook Pro M3 Max (GPU, LPDDR5-6400 x 512-bit, Llama3-8B).
    Macbook,
    /// Lenovo IdeaPad Slim 5 (Intel NPU, LPDDR5X-7467 x 64-bit, OPT-6.7B).
    Ideapad,
    /// Apple iPhone 15 Pro (GPU, LPDDR5-6400 x 64-bit, Phi-1.5).
    Iphone,
}

impl PlatformId {
    /// All four paper platforms, in Table II order.
    pub fn all() -> [PlatformId; 4] {
        [PlatformId::Jetson, PlatformId::Macbook, PlatformId::Ideapad, PlatformId::Iphone]
    }
}

impl std::fmt::Display for PlatformId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PlatformId::Jetson => "Jetson AGX Orin",
            PlatformId::Macbook => "MacBook Pro (M3 Max)",
            PlatformId::Ideapad => "IdeaPad Slim 5",
            PlatformId::Iphone => "iPhone 15 Pro",
        };
        write!(f, "{s}")
    }
}

/// A complete evaluation platform: SoC processor model, memory system, PIM
/// configuration, and calibration constants.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Platform {
    /// Which platform this is.
    pub id: PlatformId,
    /// Roofline model of the primary SoC processor (Table II).
    pub soc: SocProcessor,
    /// Memory-system specification (Table II).
    pub dram: DramSpec,
    /// AiM-style PIM architecture on this memory (paper Section VI-A).
    pub pim_arch: PimArch,
    /// Fixed per-operation cost of dispatching work to the PIM (driver, DMA
    /// descriptor, synchronization) in nanoseconds. Calibrated so that the
    /// end-to-end PIM decode speedups land in the paper's Fig. 3 range.
    pub pim_op_overhead_ns: f64,
    /// Conservative worst-case GEMM slowdown when operating on the
    /// PIM-optimized layout (paper Table III: 2.1 / 0.1 / 1.1 / 1.6 %).
    pub gemm_layout_slowdown: f64,
    /// Name of the LLM evaluated on this platform (Table II).
    pub model_name: &'static str,
}

impl Platform {
    /// Build a platform preset by id.
    pub fn get(id: PlatformId) -> Platform {
        match id {
            PlatformId::Jetson => {
                let dram = DramSpec::lpddr5_6400(256, 64 << 30);
                let pim_arch = PimArch::aim(&dram.topology);
                Platform {
                    id,
                    soc: SocProcessor {
                        name: "Ampere CUDA/Tensor cores".into(),
                        kind: ProcKind::Gpu,
                        peak_flops: 42.5e12,
                        peak_bw: 204.8e9,
                        gemm_compute_eff: 0.60,
                        bw_util: 0.763,
                        kernel_overhead_ns: 8_000.0,
                    },
                    dram,
                    pim_arch,
                    pim_op_overhead_ns: 90_000.0,
                    gemm_layout_slowdown: 0.021,
                    model_name: "llama3-8b",
                }
            }
            PlatformId::Macbook => {
                let dram = DramSpec::lpddr5_6400(512, 64 << 30);
                let pim_arch = PimArch::aim(&dram.topology);
                Platform {
                    id,
                    soc: SocProcessor {
                        name: "M3 Max GPU".into(),
                        kind: ProcKind::Gpu,
                        peak_flops: 28.4e12,
                        peak_bw: 409.6e9,
                        gemm_compute_eff: 0.62,
                        bw_util: 0.883,
                        kernel_overhead_ns: 5_000.0,
                    },
                    dram,
                    pim_arch,
                    pim_op_overhead_ns: 60_000.0,
                    gemm_layout_slowdown: 0.001,
                    model_name: "llama3-8b",
                }
            }
            PlatformId::Ideapad => {
                let dram = DramSpec::lpddr5x_7467(64, 32 << 30);
                let pim_arch = PimArch::aim(&dram.topology);
                Platform {
                    id,
                    soc: SocProcessor {
                        name: "Intel AI Boost NPU".into(),
                        kind: ProcKind::Npu,
                        peak_flops: 5.6e12,
                        peak_bw: 59.7e9,
                        gemm_compute_eff: 0.50,
                        bw_util: 0.333,
                        kernel_overhead_ns: 15_000.0,
                    },
                    dram,
                    pim_arch,
                    pim_op_overhead_ns: 60_000.0,
                    gemm_layout_slowdown: 0.011,
                    model_name: "opt-6.7b",
                }
            }
            PlatformId::Iphone => {
                let dram = DramSpec::lpddr5_6400(64, 8 << 30);
                let pim_arch = PimArch::aim(&dram.topology);
                Platform {
                    id,
                    soc: SocProcessor {
                        name: "A17 Pro GPU".into(),
                        kind: ProcKind::Gpu,
                        peak_flops: 4.29e12,
                        peak_bw: 51.2e9,
                        gemm_compute_eff: 0.60,
                        bw_util: 0.746,
                        kernel_overhead_ns: 10_000.0,
                    },
                    dram,
                    pim_arch,
                    pim_op_overhead_ns: 50_000.0,
                    gemm_layout_slowdown: 0.016,
                    model_name: "phi-1.5",
                }
            }
        }
    }

    /// All four platforms.
    pub fn all() -> Vec<Platform> {
        PlatformId::all().into_iter().map(Platform::get).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_bandwidths_match_table2() {
        let expect = [204.8, 409.6, 59.736, 51.2];
        for (p, want) in Platform::all().into_iter().zip(expect) {
            let got = p.dram.peak_bandwidth_bytes_per_sec() / 1e9;
            assert!((got - want).abs() < 0.1, "{}: {got} vs {want}", p.id);
            assert!((p.soc.peak_bw / 1e9 - want).abs() < 0.1);
        }
    }

    #[test]
    fn ridge_points_match_section_vib() {
        // Paper: Jetson 207.5, MacBook 69.3, IdeaPad 93.8, iPhone 83.8.
        let expect = [207.5, 69.3, 93.8, 83.8];
        for (p, want) in Platform::all().into_iter().zip(expect) {
            let got = p.soc.ridge_point();
            assert!((got - want).abs() / want < 0.01, "{}: {got} vs {want}", p.id);
        }
    }

    #[test]
    fn bw_utils_match_section_vic() {
        let expect = [0.763, 0.883, 0.333, 0.746];
        for (p, want) in Platform::all().into_iter().zip(expect) {
            assert_eq!(p.soc.bw_util, want, "{}", p.id);
        }
    }

    #[test]
    fn slowdowns_match_table3_worst_case() {
        let expect = [0.021, 0.001, 0.011, 0.016];
        for (p, want) in Platform::all().into_iter().zip(expect) {
            assert_eq!(p.gemm_layout_slowdown, want, "{}", p.id);
        }
    }

    #[test]
    fn pim_arch_has_row_sized_global_buffer() {
        for p in Platform::all() {
            assert_eq!(p.pim_arch.chunk_row_bytes, 2048, "{}", p.id);
            assert_eq!(p.pim_arch.chunk_rows, 1);
        }
    }

    #[test]
    fn display_names() {
        for id in PlatformId::all() {
            assert!(!id.to_string().is_empty());
        }
    }
}
