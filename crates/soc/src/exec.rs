//! Roofline execution model of SoC processors (GPU/NPU).
//!
//! The paper measures GEMM/GEMV on real devices; lacking the hardware, we
//! model them with a calibrated roofline (paper Section VI-B reasons about
//! its own results exactly this way, via ridge points): an operation takes
//! `max(flops / effective_flops, bytes / effective_bandwidth)` plus a fixed
//! kernel-launch overhead. Effective bandwidth uses the per-platform GEMV
//! bandwidth utilizations the paper reports (76.3 / 88.3 / 33.3 / 74.6 %).

use serde::{Deserialize, Serialize};

/// Kind of SoC processor running the non-PIM operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcKind {
    /// Graphics processor (Jetson, MacBook, iPhone in the paper).
    Gpu,
    /// Neural processing unit (IdeaPad in the paper).
    Npu,
}

/// Roofline model of one SoC processor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocProcessor {
    /// Marketing name ("Ampere GPU", "M3 Max", …).
    pub name: String,
    /// Processor kind.
    pub kind: ProcKind,
    /// Peak FP16 throughput in FLOP/s.
    pub peak_flops: f64,
    /// Peak memory bandwidth in bytes/s (Table II).
    pub peak_bw: f64,
    /// Fraction of peak FLOP/s achieved by large GEMM kernels.
    pub gemm_compute_eff: f64,
    /// Fraction of peak bandwidth achieved by memory-bound kernels
    /// (the paper's measured GEMV utilizations, Section VI-C).
    pub bw_util: f64,
    /// Fixed per-kernel launch/synchronization overhead in nanoseconds.
    pub kernel_overhead_ns: f64,
}

impl SocProcessor {
    /// Ridge-point arithmetic intensity (FLOP/byte): the minimum intensity
    /// at which the processor reaches peak FLOP/s
    /// (`peak FLOPS / peak bandwidth`, paper Section VI-B).
    pub fn ridge_point(&self) -> f64 {
        self.peak_flops / self.peak_bw
    }

    /// Effective streaming bandwidth (bytes/s).
    pub fn effective_bw(&self) -> f64 {
        self.peak_bw * self.bw_util
    }

    /// Time of a GEMM `[m x k] . [k x n]^T -> [m x n]` over fp16-sized
    /// elements (`elem_bytes`), in nanoseconds. `n` and `k` are the weight
    /// dimensions (output and input features), `m` is the batch/sequence
    /// dimension: `m == 1` is a GEMV.
    pub fn gemm_ns(&self, m: u64, n: u64, k: u64, elem_bytes: u64) -> f64 {
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let bytes = ((n * k) + (m * k) + (m * n)) as f64 * elem_bytes as f64;
        let compute = flops / (self.peak_flops * self.gemm_compute_eff);
        let memory = bytes / self.effective_bw();
        compute.max(memory) * 1e9 + self.kernel_overhead_ns
    }

    /// Time of a GEMV (`m == 1`), nanoseconds.
    pub fn gemv_ns(&self, n: u64, k: u64, elem_bytes: u64) -> f64 {
        self.gemm_ns(1, n, k, elem_bytes)
    }

    /// Time of a purely memory-bound pass over `bytes` (attention KV reads,
    /// residual/norm traffic, re-layout copies executed by the SoC),
    /// nanoseconds, including one kernel overhead.
    pub fn stream_ns(&self, bytes: u64) -> f64 {
        bytes as f64 / self.effective_bw() * 1e9 + self.kernel_overhead_ns
    }

    /// Arithmetic intensity (FLOP/byte) of a GEMM with batch `m` over a
    /// `n x k` weight (the quantity compared against the ridge point in the
    /// paper's Fig. 13 analysis).
    pub fn gemm_intensity(m: u64, n: u64, k: u64, elem_bytes: u64) -> f64 {
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let bytes = ((n * k) + (m * k) + (m * n)) as f64 * elem_bytes as f64;
        flops / bytes
    }

    /// Compute utilization (fraction of peak FLOP/s actually achieved) of a
    /// GEMM — what paper Fig. 2(b) plots for GEMV.
    pub fn compute_utilization(&self, m: u64, n: u64, k: u64, elem_bytes: u64) -> f64 {
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let t = (self.gemm_ns(m, n, k, elem_bytes) - self.kernel_overhead_ns) / 1e9;
        flops / t / self.peak_flops
    }

    /// Memory-bandwidth utilization (fraction of peak bytes/s) of a GEMM.
    pub fn bandwidth_utilization(&self, m: u64, n: u64, k: u64, elem_bytes: u64) -> f64 {
        let bytes = ((n * k) + (m * k) + (m * n)) as f64 * elem_bytes as f64;
        let t = (self.gemm_ns(m, n, k, elem_bytes) - self.kernel_overhead_ns) / 1e9;
        bytes / t / self.peak_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jetson_gpu() -> SocProcessor {
        SocProcessor {
            name: "Ampere GPU".into(),
            kind: ProcKind::Gpu,
            peak_flops: 42.5e12,
            peak_bw: 204.8e9,
            gemm_compute_eff: 0.60,
            bw_util: 0.763,
            kernel_overhead_ns: 8_000.0,
        }
    }

    #[test]
    fn ridge_point_matches_paper() {
        // Paper Section VI-B: Jetson ridge point = 207.5 FLOP/byte.
        let p = jetson_gpu();
        assert!((p.ridge_point() - 207.5).abs() < 0.2, "{}", p.ridge_point());
    }

    #[test]
    fn gemv_is_memory_bound_with_low_compute_utilization() {
        // Paper Fig. 2(b): GEMV compute utilization < 1%, memory ~ bw_util.
        let p = jetson_gpu();
        let cu = p.compute_utilization(1, 4096, 4096, 2);
        let bu = p.bandwidth_utilization(1, 4096, 4096, 2);
        assert!(cu < 0.01, "compute util {cu}");
        assert!((bu - 0.763).abs() < 0.01, "bandwidth util {bu}");
    }

    #[test]
    fn latency_sublinear_until_ridge_point() {
        // Doubling m below the ridge point must not double latency
        // (memory-bound plateau), the effect driving Fig. 13.
        let p = jetson_gpu();
        let t64 = p.gemm_ns(64, 4096, 4096, 2);
        let t128 = p.gemm_ns(128, 4096, 4096, 2);
        assert!(t128 / t64 < 1.2, "still memory bound: {}", t128 / t64);
        // Far above the ridge point, latency scales ~linearly.
        let t1k = p.gemm_ns(1024, 4096, 4096, 2);
        let t2k = p.gemm_ns(2048, 4096, 4096, 2);
        assert!(t2k / t1k > 1.9, "compute bound: {}", t2k / t1k);
    }

    #[test]
    fn intensity_crosses_ridge_where_expected() {
        let p = jetson_gpu();
        // Intensity ~ m for m << k; the crossover to compute-bound happens
        // around m ~ ridge * (1/eff adjustments).
        let i = SocProcessor::gemm_intensity(64, 4096, 4096, 2);
        assert!(i > 60.0 && i < 64.5, "{i}");
        assert!(i < p.ridge_point());
    }

    #[test]
    fn stream_is_bandwidth_bound() {
        let p = jetson_gpu();
        let t = p.stream_ns(1 << 30) - p.kernel_overhead_ns;
        let bw = (1u64 << 30) as f64 / (t / 1e9);
        assert!((bw - p.effective_bw()).abs() / bw < 1e-9);
    }

    #[test]
    fn kernel_overhead_dominates_tiny_ops() {
        let p = jetson_gpu();
        let t = p.gemv_ns(32, 32, 2);
        assert!(t < 2.0 * p.kernel_overhead_ns);
    }
}
