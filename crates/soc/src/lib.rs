//! # facil-soc
//!
//! SoC processor models for the FACIL (HPCA 2025) reproduction:
//!
//! * [`exec::SocProcessor`] — a calibrated roofline execution model
//!   (GEMM/GEMV/streaming latency, ridge points, utilizations) substituting
//!   for the paper's real-device measurements;
//! * [`platform`] — the four Table II platforms (Jetson AGX Orin, MacBook
//!   Pro M3 Max, IdeaPad Slim 5, iPhone 15 Pro) with their memory systems
//!   and calibration constants;
//! * [`slowdown`] — the Table III experiment: GEMM weight-read traces
//!   replayed on the DRAM simulator under conventional vs PIM-optimized
//!   layouts.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod exec;
pub mod platform;
pub mod slowdown;

pub use exec::{ProcKind, SocProcessor};
pub use platform::{Platform, PlatformId};
pub use slowdown::{
    coalesced_burst_latency_ns, gemm_layout_slowdown, streaming_throughput_ratio, SlowdownResult,
};
