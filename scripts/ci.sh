#!/usr/bin/env bash
# Local CI: everything the repo expects to pass before a merge.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace -q

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== docs =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "== chaos smoke =="
# Fault-injection showcase must run clean and emit valid JSONL: tagged
# experiment lines plus one schema-versioned run manifest.
cargo run --release -q -p facil-bench --bin chaos -- --smoke --json \
  | python3 -c 'import json,sys
lines = [json.loads(l) for l in sys.stdin if l.strip()]
assert lines, "chaos --json produced no output"
manifests = [o for o in lines if "schema_version" in o]
runs = [o for o in lines if "schema_version" not in o]
assert len(manifests) == 1, f"expected exactly one run manifest, got {len(manifests)}"
assert manifests[0]["bench"] == "chaos" and "seed" in manifests[0], manifests[0]
for o in runs:
    assert "experiment" in o and "report" in o, o.keys()
degraded = [o for o in runs if o["experiment"] == "degraded_mode"]
assert any(o["report"]["goodput_qps"] > 0 for o in degraded), "no goodput under PIM fault"
crash = [o for o in runs if o["experiment"] == "crash_failover"]
assert all(o["report"]["completed"] + o["report"]["shed"] == o["report"]["offered"] for o in crash)
print(f"chaos smoke OK ({len(runs)} runs + manifest)")'

echo "== perf_dram smoke =="
# DRAM scheduling perf harness: parallel stats must equal serial and the
# next-event engine must equal the cycle-stepped reference (the binary
# asserts both per point), the JSONL must be well-formed, and the
# wall-clock numbers are kept as a CI artifact. The >= 2x parallel gate is
# enforced only on machines with >= 4 cores; the >= 5x next-event-engine
# gate on the low-utilization serving trace is enforced everywhere.
mkdir -p target
perf_artifact="target/BENCH_dram.json"
: > "$perf_artifact"
cargo run --release -q -p facil-bench --bin perf_dram -- --smoke --json --enforce-speedup \
  | tee "$perf_artifact" \
  | python3 -c 'import json,sys
lines = [json.loads(l) for l in sys.stdin if l.strip()]
manifests = [o for o in lines if "schema_version" in o]
runs = [o for o in lines if "schema_version" not in o]
assert len(manifests) == 1, f"expected one manifest, got {len(manifests)}"
assert manifests[0]["bench"] == "perf_dram", manifests[0]
sweep = [o for o in runs if "mode" not in o["report"]]
low = [o for o in runs if o["report"].get("mode") == "lowutil"]
assert len(sweep) == 4, f"expected a 4-point channel sweep, got {len(sweep)}"
assert len(low) == 1, f"expected one low-utilization point, got {len(low)}"
for o in sweep:
    r = o["report"]
    assert r["stats_match"] is True, r
    assert r["serial_s"] > 0 and r["parallel_s"] > 0, r
channels = [o["report"]["channels"] for o in sweep]
assert channels == [1, 2, 4, 8], channels
widest = sweep[-1]["report"]
l = low[0]["report"]
assert l["stats_match"] is True, l
assert l["stepped_s"] > 0 and l["event_s"] > 0, l
ev_speedup = l["event_speedup"]
assert ev_speedup >= 5.0, f"event engine only {ev_speedup:.2f}x stepped"
rps, speedup, threads = widest["parallel_rps"], widest["speedup"], widest["threads"]
print(f"perf_dram smoke OK (8ch: {rps:.0f} req/s, {speedup:.2f}x on {threads} threads; "
      f"event engine {ev_speedup:.1f}x stepped on the low-util trace)")'
echo "perf artifact: $perf_artifact"

echo "== perf_pool smoke =="
# Executor dispatch-overhead harness: the persistent work-stealing pool
# must beat the old scoped-spawn baseline on per-call dispatch cost, and
# the fleet loop must reach >= 1.5x steps/s — both gates enforced only on
# machines with >= 4 cores (the binary checks; worker count alone cannot
# buy wall-clock speedup). Results equality is asserted inside the binary;
# the validator re-checks the manifest schema so silent drift cannot pass.
mkdir -p target
pool_artifact="target/BENCH_pool.json"
: > "$pool_artifact"
cargo run --release -q -p facil-bench --bin perf_pool -- --smoke --json --enforce-speedup \
  | tee "$pool_artifact" \
  | python3 -c 'import json,sys
lines = [json.loads(l) for l in sys.stdin if l.strip()]
manifests = [o for o in lines if "schema_version" in o]
runs = [o for o in lines if "schema_version" not in o]
assert len(manifests) == 1, f"expected one manifest, got {len(manifests)}"
m = manifests[0]
assert m["bench"] == "perf_pool" and "seed" in m, m
res = m["results"]
for key in ("spawn_us_per_dispatch", "executor_us_per_dispatch", "dispatch_speedup",
            "serial_steps_s", "parallel_steps_s", "fleet_speedup"):
    assert key in res and res[key] > 0, (key, res)
dispatch = [o for o in runs if o["report"].get("mode") == "dispatch"]
fleet = [o for o in runs if o["report"].get("mode") == "fleet"]
assert len(dispatch) == 1 and len(fleet) == 1, [o["report"].get("mode") for o in runs]
d, f = dispatch[0]["report"], fleet[0]["report"]
assert d["results_match"] is True and f["reports_match"] is True, (d, f)
assert f["offered"] > 0 and f["serial_s"] > 0 and f["parallel_s"] > 0, f
spawn, execu = res["spawn_us_per_dispatch"], res["executor_us_per_dispatch"]
dsp, fsp = res["dispatch_speedup"], res["fleet_speedup"]
threads, cores = m["config"]["threads"], m["config"]["cores"]
print(f"perf_pool smoke OK (dispatch {spawn:.1f} -> {execu:.1f} us/call = {dsp:.1f}x; "
      f"fleet {fsp:.2f}x on {threads} threads, {cores} cores)")'
echo "pool artifact: $pool_artifact"

echo "== DRAM engine equivalence smoke =="
# The simulation engine must be invisible in results: serving_v2 --json
# output is byte-identical whether the DRAM backend runs the cycle-stepped
# reference or the next-event engine (FACIL_DRAM_ENGINE selects it).
e1="$(mktemp /tmp/facil-engine-stepped.XXXXXX.jsonl)"
e2="$(mktemp /tmp/facil-engine-event.XXXXXX.jsonl)"
FACIL_DRAM_ENGINE=stepped cargo run --release -q -p facil-bench --bin serving_v2 -- --smoke --json > "$e1"
FACIL_DRAM_ENGINE=event cargo run --release -q -p facil-bench --bin serving_v2 -- --smoke --json > "$e2"
diff "$e1" "$e2" && echo "serving_v2 stepped vs event engine: byte-identical"
rm -f "$e1" "$e2"

echo "== mapsearch smoke =="
# Mapping-search ablation: the JSONL must be well-formed (one SearchReport
# run per platform + one manifest), every Fig. 13 baseline tensor must
# retain the paper's closed-form pick, and at least one searched mapping
# must beat the paper's by more than the incumbent threshold. The full
# report is kept as a CI artifact.
mkdir -p target
mapsearch_artifact="target/BENCH_mapsearch.json"
: > "$mapsearch_artifact"
cargo run --release -q -p facil-bench --bin mapsearch -- --smoke --json \
  | tee "$mapsearch_artifact" \
  | python3 -c 'import json,sys
lines = [json.loads(l) for l in sys.stdin if l.strip()]
manifests = [o for o in lines if "schema_version" in o]
runs = [o for o in lines if "schema_version" not in o]
assert len(manifests) == 1, f"expected one manifest, got {len(manifests)}"
m = manifests[0]
assert m["bench"] == "mapsearch" and "seed" in m, m
assert m["results"]["baselines_reproduced"] == 1, m
assert len(runs) == 2, f"expected a 2-platform smoke sweep, got {len(runs)}"
threshold = m["config"]["improvement_threshold"]
extras = {"moe-expert", "longctx-ffn"}
wins = 0
for o in runs:
    assert o["experiment"] == "mapsearch", o
    rep = o["report"]
    assert rep["results"], rep["platform"]
    for r in rep["results"]:
        name = rep["platform"] + "/" + r["tensor"]
        if r["tensor"] in extras:
            wins += r["displaced"]
        else:
            assert not r["displaced"], "baseline displaced: " + name
            assert r["best"] == r["paper"], name
        if r["displaced"]:
            assert r["improvement"] > threshold, name
            assert r["best_score"] < r["paper_score"], name
assert wins >= 1, "no searched mapping beat the paper pick"
print(f"mapsearch smoke OK ({len(runs)} platforms, {wins} searched wins)")'
echo "mapsearch artifact: $mapsearch_artifact"

echo "== fidelity smoke =="
# Functional-fidelity gate: the PIM command replay must match the pim_gemv
# reference bit for bit (zero f32/f16 mismatches on every shape x MapID),
# and the FACIL-vs-conventional token streams must be identical. The binary
# itself exits non-zero on any violation; the validator re-checks the JSON
# so a silent schema drift cannot pass. Kept as a CI artifact.
mkdir -p target
fidelity_artifact="target/BENCH_fidelity.json"
: > "$fidelity_artifact"
cargo run --release -q -p facil-bench --bin fidelity -- --smoke --json \
  | tee "$fidelity_artifact" \
  | python3 -c 'import json,sys
lines = [json.loads(l) for l in sys.stdin if l.strip()]
manifests = [o for o in lines if "schema_version" in o]
runs = [o for o in lines if "schema_version" not in o]
assert len(manifests) == 1, f"expected one manifest, got {len(manifests)}"
m = manifests[0]
assert m["bench"] == "fidelity" and "seed" in m, m
assert m["results"]["mismatches"] == 0, m
assert m["results"]["token_equivalent"] == 1, m
plats = [o for o in runs if o["experiment"] == "fidelity"]
assert plats, "no platform replay runs"
replays = 0
for o in plats:
    rep = o["report"]
    assert rep["mismatches"] == 0, rep["platform"]
    assert rep["shapes"], rep["platform"]
    for s in rep["shapes"]:
        assert s["f32_mismatches"] == 0 and s["f16_mismatches"] == 0, s
        assert s["commands"] > 0 and s["waves"] > 0, s
        replays += 1
assert replays == m["results"]["replays"], (replays, m["results"])
tok = [o for o in runs if o["experiment"] == "fidelity_tokens"]
assert len(tok) == 1, "expected one token-equivalence run"
t = tok[0]["report"]
assert t["equivalent"] is True and t["logit_mismatches"] == 0, t
assert t["facil_tokens"] == t["conventional_tokens"] and len(t["facil_tokens"]) == t["steps"], t
ntok = len(t["facil_tokens"])
print(f"fidelity smoke OK ({replays} bit-exact replays, {ntok} equivalent tokens)")'
echo "fidelity artifact: $fidelity_artifact"

echo "== cluster smoke =="
# Cluster resilience showcase: the JSONL must be well-formed (chaos
# matrix + tenant QoS + autoscale runs and one manifest), every run must
# satisfy the conservation invariant (offered == completed + shed), the
# chaos matrix must degrade availability monotonically, and the
# autoscaler must both grow and shrink the fleet. Kept as a CI artifact.
mkdir -p target
cluster_artifact="target/BENCH_cluster.json"
: > "$cluster_artifact"
cargo run --release -q -p facil-bench --bin cluster -- --smoke --json \
  | tee "$cluster_artifact" \
  | python3 -c 'import json,sys
lines = [json.loads(l) for l in sys.stdin if l.strip()]
manifests = [o for o in lines if "schema_version" in o]
runs = [o for o in lines if "schema_version" not in o]
assert len(manifests) == 1, f"expected one manifest, got {len(manifests)}"
m = manifests[0]
assert m["bench"] == "cluster" and "seed" in m, m
for o in runs:
    assert "experiment" in o and "report" in o, o.keys()
    r = o["report"]
    assert r["completed"] + r["shed"] == r["offered"], ("conservation", o["experiment"], r["offered"], r["completed"], r["shed"])
matrix = [o["report"] for o in runs if o["experiment"] == "chaos_matrix"]
assert len(matrix) == 3, f"expected a 3-point chaos matrix, got {len(matrix)}"
assert matrix[0]["availability"] == 1.0, matrix[0]["availability"]
assert matrix[0]["availability"] >= matrix[1]["availability"] >= matrix[2]["availability"], \
    [r["availability"] for r in matrix]
qos = [o["report"] for o in runs if o["experiment"] == "tenant_qos"]
assert len(qos) == 1 and qos[0]["shed_quota"] > 0, "tenant quota never bound"
scale = [o["report"] for o in runs if o["experiment"] == "autoscale"]
assert len(scale) == 1, runs
assert scale[0]["scale_outs"] >= 1 and scale[0]["scale_ins"] >= 1, \
    (scale[0]["scale_outs"], scale[0]["scale_ins"])
storm = matrix[-1]["availability"]
outs = scale[0]["scale_outs"]
print(f"cluster smoke OK ({len(runs)} runs, storm availability {storm:.2f}, {outs} scale-outs)")'
echo "cluster artifact: $cluster_artifact"

echo "== FACIL_THREADS determinism smoke =="
# The worker-count knob must be invisible in results: serving_v2, cluster
# and the perf_pool fleet digest are byte-identical between 1 and 8
# workers. perf_pool uses --digest, which prints only the deterministic
# fleet report (wall-clock fields would break the diff).
for bin in serving_v2 cluster perf_pool; do
  if [ "$bin" = perf_pool ]; then
    args=(--smoke --digest)
  else
    args=(--smoke --json)
  fi
  t1="$(mktemp /tmp/facil-threads1.XXXXXX.jsonl)"
  t8="$(mktemp /tmp/facil-threads8.XXXXXX.jsonl)"
  FACIL_THREADS=1 cargo run --release -q -p facil-bench --bin "$bin" -- "${args[@]}" > "$t1"
  FACIL_THREADS=8 cargo run --release -q -p facil-bench --bin "$bin" -- "${args[@]}" > "$t8"
  diff "$t1" "$t8" && echo "$bin FACIL_THREADS=1 vs 8: byte-identical"
  rm -f "$t1" "$t8"
done

echo "== trace export smoke =="
# serving_v2 --trace must write a valid Chrome trace_event file carrying
# DRAM-command, PIM-kernel and serve-scheduler tracks.
trace_out="$(mktemp /tmp/facil-trace.XXXXXX.json)"
cargo run --release -q -p facil-bench --bin serving_v2 -- --smoke --json --trace "$trace_out" \
  > /dev/null
python3 -c "import json,sys
t = json.load(open('$trace_out'))
evs = t['traceEvents']
procs = {e['args']['name'] for e in evs if e.get('ph') == 'M' and e.get('name') == 'process_name'}
assert {'dram', 'pim', 'serve'} <= procs, f'missing process groups: {procs}'
names = {e['name'] for e in evs if e.get('ph') in ('X', 'i')}
for expected in ('ACT', 'GEMV', 'batch', 'admit'):
    assert expected in names, f'missing {expected} events: {sorted(names)}'
print(f'trace export OK ({len(evs)} events, processes {sorted(procs)})')"
rm -f "$trace_out"

echo "CI OK"
