#!/usr/bin/env bash
# Local CI: everything the repo expects to pass before a merge.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace -q

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== chaos smoke =="
# Fault-injection showcase must run clean and emit valid JSONL.
cargo run --release -q -p facil-bench --bin chaos -- --smoke --json \
  | python3 -c 'import json,sys
lines = [json.loads(l) for l in sys.stdin if l.strip()]
assert lines, "chaos --json produced no output"
for o in lines:
    assert "experiment" in o and "report" in o, o.keys()
degraded = [o for o in lines if o["experiment"] == "degraded_mode"]
assert any(o["report"]["goodput_qps"] > 0 for o in degraded), "no goodput under PIM fault"
crash = [o for o in lines if o["experiment"] == "crash_failover"]
assert all(o["report"]["completed"] + o["report"]["shed"] == o["report"]["offered"] for o in crash)
print(f"chaos smoke OK ({len(lines)} runs)")'

echo "CI OK"
