#!/usr/bin/env bash
# Local CI: everything the repo expects to pass before a merge.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace -q

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
